open Dsgraph

type t = {
  graph : Graph.t;
  cluster_of : int array;
  num_clusters : int;
  member_lists : int list array; (* sorted members, lazily computed eagerly *)
}

let make g ~cluster_of =
  let n = Graph.n g in
  if Array.length cluster_of <> n then
    invalid_arg "Clustering.make: array length mismatch";
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  let normalized =
    Array.map
      (fun c ->
        if c < 0 then -1
        else
          match Hashtbl.find_opt remap c with
          | Some d -> d
          | None ->
              let d = !next in
              incr next;
              Hashtbl.add remap c d;
              d)
      cluster_of
  in
  let member_lists = Array.make !next [] in
  for v = n - 1 downto 0 do
    let c = normalized.(v) in
    if c >= 0 then member_lists.(c) <- v :: member_lists.(c)
  done;
  { graph = g; cluster_of = normalized; num_clusters = !next; member_lists }

let graph t = t.graph
let cluster_of t v = t.cluster_of.(v)
let num_clusters t = t.num_clusters
let members t c = t.member_lists.(c)
let clusters t = Array.to_list t.member_lists
let sizes t = Array.map List.length t.member_lists

let clustered_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.member_lists

let unclustered t =
  let acc = ref [] in
  for v = Graph.n t.graph - 1 downto 0 do
    if t.cluster_of.(v) < 0 then acc := v :: !acc
  done;
  !acc

let largest_cluster t =
  let best = ref (-1) and best_size = ref (-1) in
  Array.iteri
    (fun c l ->
      let s = List.length l in
      if s > !best_size then begin
        best := c;
        best_size := s
      end)
    t.member_lists;
  !best

let adjacent_cluster_pairs t =
  let seen = Hashtbl.create 16 in
  Graph.iter_edges t.graph (fun u v ->
      let cu = t.cluster_of.(u) and cv = t.cluster_of.(v) in
      if cu >= 0 && cv >= 0 && cu <> cv then begin
        let key = (min cu cv, max cu cv) in
        if not (Hashtbl.mem seen key) then Hashtbl.add seen key ()
      end);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let non_adjacent t = adjacent_cluster_pairs t = []

let strong_diameter t c = Bfs.diameter_of_set t.graph t.member_lists.(c)

let max_strong_diameter t =
  let worst = ref 0 in
  let disconnected = ref false in
  for c = 0 to t.num_clusters - 1 do
    match strong_diameter t c with
    | -1 -> disconnected := true
    | d -> if d > !worst then worst := d
  done;
  if !disconnected then -1 else !worst

let weak_diameter ?within t c =
  Bfs.weak_diameter_of_set ?mask:within t.graph t.member_lists.(c)

let max_weak_diameter ?within t =
  let worst = ref 0 in
  let disconnected = ref false in
  for c = 0 to t.num_clusters - 1 do
    match weak_diameter ?within t c with
    | -1 -> disconnected := true
    | d -> if d > !worst then worst := d
  done;
  if !disconnected then -1 else !worst

let double_sweep ?mask t c =
  match t.member_lists.(c) with
  | [] | [ _ ] -> 0
  | [ u; v ] ->
      (* pair shortcut *)
      if Graph.is_edge t.graph u v then 1
      else if mask <> None then -1 (* two non-adjacent nodes, masked: apart *)
      else
        let dist = Bfs.distances t.graph ~source:u in
        dist.(v)
  | first :: _ as members ->
      (* farthest member from [source]; None when some member unreachable *)
      let sweep source =
        let dist = Bfs.distances ?mask t.graph ~source in
        List.fold_left
          (fun acc v ->
            match acc with
            | None -> None
            | Some (best_v, best_d) ->
                if dist.(v) < 0 then None
                else if dist.(v) > best_d then Some (v, dist.(v))
                else Some (best_v, best_d))
          (Some (source, 0))
          members
      in
      (match sweep first with
      | None -> -1
      | Some (far, d1) -> (
          match sweep far with None -> -1 | Some (_, d2) -> max d1 d2))

(* Strong (member-confined) searches run on the induced member set via
   Bfs.restricted_bfs: O(cluster volume) instead of O(n) per cluster, so
   whole-decomposition sweeps stay linear even with 10^5 singleton
   clusters. Visit order matches the masked BFS they replace, so results
   are identical. *)

let member_set members =
  let set = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace set v ()) members;
  set

let restricted_sweep g set members source =
  let bfs = Bfs.restricted_bfs g ~members:set ~source in
  List.fold_left
    (fun acc v ->
      match acc with
      | None -> None
      | Some (best_v, best_d) -> (
          match Hashtbl.find_opt bfs v with
          | None -> None
          | Some (d, _) ->
              if d > best_d then Some (v, d) else Some (best_v, best_d)))
    (Some (source, 0))
    members

let strong_diameter_estimate t c =
  match t.member_lists.(c) with
  | [] | [ _ ] -> 0
  | [ u; v ] -> if Graph.is_edge t.graph u v then 1 else -1
  | first :: _ as members -> (
      let set = member_set members in
      match restricted_sweep t.graph set members first with
      | None -> -1
      | Some (far, d1) -> (
          match restricted_sweep t.graph set members far with
          | None -> -1
          | Some (_, d2) -> max d1 d2))

let weak_diameter_estimate t c = double_sweep t c

let estimate_max f t =
  let worst = ref 0 in
  let disconnected = ref false in
  for c = 0 to t.num_clusters - 1 do
    match f t c with
    | -1 -> disconnected := true
    | d -> if d > !worst then worst := d
  done;
  if !disconnected then -1 else !worst

let max_strong_diameter_estimate t = estimate_max strong_diameter_estimate t
let max_weak_diameter_estimate t = estimate_max weak_diameter_estimate t

(* BFS witness tree from the first member; [prune] keeps only the union
   of root-to-member paths (identity for the strong variant, where the
   mask already confines the search to the members) *)
let witness_tree_gen ?mask ~prune t c =
  match t.member_lists.(c) with
  | [] -> None
  | root :: _ as members ->
      let parent = Bfs.parents ?mask t.graph ~source:root in
      let dist = Bfs.distances ?mask t.graph ~source:root in
      if List.exists (fun v -> dist.(v) < 0) members then None
      else
        let height = List.fold_left (fun h v -> max h dist.(v)) 0 members in
        let pairs =
          if not prune then
            List.filter_map
              (fun v -> if v = root then None else Some (v, parent.(v)))
              members
          else begin
            let keep = Hashtbl.create 64 in
            let rec mark v =
              if not (Hashtbl.mem keep v) then begin
                Hashtbl.add keep v ();
                if v <> root then mark parent.(v)
              end
            in
            List.iter mark members;
            List.sort compare
              (Hashtbl.fold
                 (fun v () acc ->
                   if v = root then acc else (v, parent.(v)) :: acc)
                 keep [])
          end
        in
        Some (root, pairs, height)

let witness_tree t c =
  match t.member_lists.(c) with
  | [] -> None
  | [ v ] -> Some (v, [], 0)
  | root :: _ as members ->
      let set = member_set members in
      let bfs = Bfs.restricted_bfs t.graph ~members:set ~source:root in
      if List.exists (fun v -> not (Hashtbl.mem bfs v)) members then None
      else
        let height =
          List.fold_left (fun h v -> max h (fst (Hashtbl.find bfs v))) 0 members
        in
        let pairs =
          List.filter_map
            (fun v ->
              if v = root then None else Some (v, snd (Hashtbl.find bfs v)))
            members
        in
        Some (root, pairs, height)

let weak_witness_tree ?within t c =
  witness_tree_gen ?mask:within ~prune:true t c

let eccentric_pair_gen ?mask t c =
  match t.member_lists.(c) with
  | [] -> (-1, -1, -1)
  | [ v ] -> (v, v, 0)
  | first :: _ as members ->
      let sweep source =
        let dist = Bfs.distances ?mask t.graph ~source in
        if List.exists (fun v -> dist.(v) < 0) members then None
        else
          Some
            (List.fold_left
               (fun (bv, bd) v ->
                 if dist.(v) > bd then (v, dist.(v)) else (bv, bd))
               (source, 0) members)
      in
      (match sweep first with
      | None -> (-1, -1, -1)
      | Some (u, _) -> (
          match sweep u with
          | None -> (-1, -1, -1)
          | Some (v, d) -> (u, v, d)))

let eccentric_pair t c =
  match t.member_lists.(c) with
  | [] -> (-1, -1, -1)
  | [ v ] -> (v, v, 0)
  | first :: _ as members -> (
      let set = member_set members in
      let sweep source =
        let bfs = Bfs.restricted_bfs t.graph ~members:set ~source in
        if List.exists (fun v -> not (Hashtbl.mem bfs v)) members then None
        else
          Some
            (List.fold_left
               (fun (bv, bd) v ->
                 let d = fst (Hashtbl.find bfs v) in
                 if d > bd then (v, d) else (bv, bd))
               (source, 0) members)
      in
      match sweep first with
      | None -> (-1, -1, -1)
      | Some (u, _) -> (
          match sweep u with
          | None -> (-1, -1, -1)
          | Some (v, d) -> (u, v, d)))

let weak_eccentric_pair ?within t c = eccentric_pair_gen ?mask:within t c

let pp fmt t =
  Format.fprintf fmt "clustering(%d clusters, %d/%d nodes)" t.num_clusters
    (clustered_count t) (Graph.n t.graph)
