open Dsgraph

type t = { clustering : Clustering.t; color : int array }

let make clustering ~color_of_cluster =
  if Array.length color_of_cluster <> Clustering.num_clusters clustering then
    invalid_arg "Decomposition.make: color array length mismatch";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Decomposition.make: negative color")
    color_of_cluster;
  { clustering; color = Array.copy color_of_cluster }

let clustering t = t.clustering
let color_of_cluster t c = t.color.(c)

let color_of_node t v =
  let c = Clustering.cluster_of t.clustering v in
  if c < 0 then -1 else t.color.(c)

let num_colors t = Array.fold_left (fun acc c -> max acc (c + 1)) 0 t.color

let clusters_of_color t col =
  let acc = ref [] in
  Array.iteri (fun c col' -> if col' = col then acc := c :: !acc) t.color;
  List.rev !acc

let ( let* ) r f = Result.bind r f

let check ?colors_bound ?strong_diameter_bound ?weak_diameter_bound ?domain t =
  let g = Clustering.graph t.clustering in
  let in_domain v = match domain with None -> true | Some m -> Mask.mem m v in
  let* () =
    let missing = ref [] in
    for v = Graph.n g - 1 downto 0 do
      if in_domain v && Clustering.cluster_of t.clustering v < 0 then
        missing := v :: !missing
    done;
    match !missing with
    | [] -> Ok ()
    | v :: _ -> Error (Printf.sprintf "decomposition: node %d unclustered" v)
  in
  let* () =
    let bad = ref None in
    Graph.iter_edges g (fun u v ->
        if in_domain u && in_domain v then begin
          let cu = Clustering.cluster_of t.clustering u
          and cv = Clustering.cluster_of t.clustering v in
          if cu >= 0 && cv >= 0 && cu <> cv && t.color.(cu) = t.color.(cv) then
            bad := Some (u, v)
        end);
    match !bad with
    | None -> Ok ()
    | Some (u, v) ->
        Error
          (Printf.sprintf
             "decomposition: edge (%d,%d) joins same-color clusters" u v)
  in
  let* () =
    match colors_bound with
    | Some b when num_colors t > b ->
        Error (Printf.sprintf "decomposition: %d colors > bound %d" (num_colors t) b)
    | _ -> Ok ()
  in
  let* () =
    match strong_diameter_bound with
    | None -> Ok ()
    | Some b -> (
        match Clustering.max_strong_diameter t.clustering with
        | -1 -> Error "decomposition: a cluster is internally disconnected"
        | d when d > b ->
            Error (Printf.sprintf "decomposition: strong diameter %d > bound %d" d b)
        | _ -> Ok ())
  in
  match weak_diameter_bound with
  | None -> Ok ()
  | Some b -> (
      match Clustering.max_weak_diameter t.clustering with
      | -1 -> Error "decomposition: a cluster spans disconnected components"
      | d when d > b ->
          Error (Printf.sprintf "decomposition: weak diameter %d > bound %d" d b)
      | _ -> Ok ())

let quality t =
  ( num_colors t,
    Clustering.max_strong_diameter t.clustering,
    Clustering.max_weak_diameter t.clustering )

let pp fmt t =
  Format.fprintf fmt "decomposition(%d colors, %a)" (num_colors t)
    Clustering.pp t.clustering
