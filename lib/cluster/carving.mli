(** Ball-carving results: a clustering of part of a node set, with the
    remaining nodes {i dead} (removed). This is the output type of both the
    weak-diameter algorithm [A] and the paper's strong-diameter algorithm
    [B] of Theorem 2.1. *)

type t = {
  clustering : Clustering.t;
  domain : Dsgraph.Mask.t;
      (** The node set the carving ran on (the algorithm may be invoked on
          an induced subgraph [G\[S\]]). *)
}

val make : Clustering.t -> domain:Dsgraph.Mask.t -> t
(** @raise Invalid_argument if a clustered node lies outside the domain. *)

val dead : t -> int list
(** Domain nodes left unclustered. *)

val dead_fraction : t -> float
(** [|dead| / |domain|]; [0] on an empty domain. *)

val check_weak :
  ?epsilon:float ->
  ?steiner:Steiner.forest ->
  ?depth_bound:int ->
  ?congestion_bound:int ->
  t ->
  (unit, string) result
(** Validates the weak-carving contract: clusters are non-adjacent and
    confined to the domain, the dead fraction is at most [epsilon], and —
    when a Steiner forest is supplied — each cluster has a valid tree
    within the given depth and congestion bounds. *)

val check_strong :
  ?epsilon:float -> ?diameter_bound:int -> t -> (unit, string) result
(** Validates the strong-carving contract: additionally every cluster's
    {e induced} subgraph is connected with diameter at most
    [diameter_bound]. *)
