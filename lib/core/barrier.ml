open Dsgraph

let build ?(epsilon = 0.5) rng ~target_n =
  if target_n < 16 then invalid_arg "Barrier.build: target_n too small";
  let nf = float_of_int target_n in
  let seg = max 1 (int_of_float (Float.round (log nf /. epsilon))) in
  (* n' nodes of degree 4 -> 2·n' edges, each contributing [seg] interior
     nodes: total ≈ n' · (1 + 2·seg); solve for n' *)
  let n' = max 8 (target_n / (1 + (2 * seg))) in
  let n' = if n' mod 2 = 0 then n' else n' + 1 in
  let base = Gen.expander rng n' in
  Gen.subdivide base seg

type analysis = {
  n : int;
  outcome : [ `Cut | `Component ];
  separator_size : int;
  separator_bound : float;
  u_diameter : int;
  diameter_scale : float;
}

let analyze ?(epsilon = 0.5) g =
  let n = Graph.n g in
  let nf = float_of_int n in
  let domain = Mask.full n in
  let separator_bound = epsilon *. nf /. Float.max (log nf) 1.0 in
  let diameter_scale = log nf *. log nf /. epsilon in
  match Sparse_cut.run ~epsilon g ~domain with
  | Sparse_cut.Cut { removed; _ } ->
      {
        n;
        outcome = `Cut;
        separator_size = List.length removed;
        separator_bound;
        u_diameter = -1;
        diameter_scale;
      }
  | Sparse_cut.Component { u; boundary } ->
      {
        n;
        outcome = `Component;
        separator_size = List.length boundary;
        separator_bound;
        u_diameter = Bfs.diameter_of_set g u;
        diameter_scale;
      }
