(** The edge version of ball carving (Section 1.3): remove at most an [ε]
    fraction of the {e edges} so that every remaining connected component
    has small strong diameter. The paper notes the proofs mirror the node
    version; we provide the classic ball-growing instantiation, which is
    also the sequential template behind the [LS93] existential bound.

    Repeatedly grow a BFS ball from the smallest-identifier unprocessed
    node until the edge boundary is at most [ε · (edges inside + 1)];
    carve the ball, cut its boundary edges, continue on the rest. Each
    ball needs at most [O(log m / (ε))] growth steps, giving cluster
    diameter [O(log m/ε)] and at most [ε·(m + #clusters)] cut edges. *)

type result = {
  clustering : Cluster.Clustering.t;
      (** every domain node is clustered; clusters = components after
          removing [cut_edges] *)
  cut_edges : (int * int) list;
  max_radius : int;
}

val carve :
  ?cost:Congest.Cost.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  result

val check :
  result -> epsilon:float -> Dsgraph.Graph.t -> (unit, string) Stdlib.result
(** Validates: clusters partition the domain, no surviving (non-cut) edge
    joins two clusters, cut fraction [<= ε·(m+k)/m], and every cluster's
    induced diameter is at most [2·max_radius]. *)
