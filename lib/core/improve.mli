(** Theorem 3.2: improving the diameter of a strong-diameter ball carving
    to [O(log^2 n/ε)] via recursive application of Lemma 3.1
    ({!Sparse_cut}).

    Level-synchronously: run the given strong carver [A] with boundary
    parameter [Θ(ε/log n)] on the active parts (pairwise non-adjacent by
    construction), then run Lemma 3.1 on each resulting cluster. A
    balanced sparse cut recurses on both sides (killing the separating
    layer); a large small-diameter component joins the final clustering
    (killing its outside boundary) and the remainder recurses. Every part
    shrinks by a factor [>= 3/2] per level, so there are [O(log n)]
    levels. *)

type strong_carver =
  ?cost:Congest.Cost.t ->
  Dsgraph.Graph.t ->
  domain:Dsgraph.Mask.t ->
  epsilon:float ->
  Cluster.Carving.t
(** The black box [A] of Theorem 3.2: any strong-diameter ball carving. *)

type stats = {
  levels : int;
  carver_invocations : int;
  lemma_invocations : int;
  cuts_taken : int;
  components_taken : int;
}

val improve :
  ?cost:Congest.Cost.t ->
  strong:strong_carver ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * stats
(** Output contract: clusters pairwise non-adjacent, each inducing a
    connected subgraph with the [O(log^2 n/ε)] diameter shape; at most an
    [ε] fraction of the domain dead (enforced by the constant choices in
    the implementation, verified by the test suite). *)
