open Dsgraph

type weak_result = {
  clustering : Cluster.Clustering.t;
  forest : Cluster.Steiner.forest;
  depth : int;
  congestion : int;
}

type weak_carver =
  ?cost:Congest.Cost.t ->
  Dsgraph.Graph.t ->
  domain:Dsgraph.Mask.t ->
  epsilon:float ->
  weak_result

type stats = {
  iterations : int;
  weak_invocations : int;
  max_ball_radius : int;
}

let log2_ceil n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (2 * k) in
  max 1 (go 0 1)

let ball_growth_limit ~n ~epsilon =
  let growth = 1.0 /. (1.0 -. (epsilon /. 2.0)) in
  int_of_float (Float.ceil (log (float_of_int (max n 2)) /. log growth)) + 1

let strong_carve ?cost ~weak ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Transform.strong_carve: epsilon must be in (0, 1)";
  let n_graph = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n_graph in
  let n = max (Mask.count domain) 2 in
  let eps' = epsilon /. (2.0 *. float_of_int (log2_ceil n)) in
  let growth_limit = ball_growth_limit ~n ~epsilon in
  let output = Array.make n_graph (-1) in
  let next_cluster = ref 0 in
  let fresh_cluster () =
    let c = !next_cluster in
    incr next_cluster;
    c
  in
  let weak_invocations = ref 0 in
  let max_ball_radius = ref 0 in
  let iterations = ref 0 in
  let id_bits = Congest.Bits.id_bits ~n:n_graph in
  (* Current level: list of components (as masks). All components of one
     level execute in parallel; we meter each separately and merge. *)
  let level = ref (Components.components ~mask:domain g |> List.map (Mask.of_list n_graph)) in
  let i = ref 1 in
  let trace = Option.bind cost Congest.Cost.trace in
  Congest.Span.enter trace "transform";
  while !level <> [] do
    Congest.Span.enter_idx trace "level" !i;
    incr iterations;
    let threshold = float_of_int n /. (2.0 ** float_of_int !i) in
    let next_level = ref [] in
    let sub_meters = ref [] in
    List.iter
      (fun comp ->
        let sub = Congest.Cost.create () in
        sub_meters := sub :: !sub_meters;
        let comp_size = Mask.count comp in
        if comp_size = 1 then
          (* trivial component: its own output cluster *)
          Mask.iter comp (fun v -> output.(v) <- fresh_cluster ())
        else begin
          incr weak_invocations;
          let wr = weak ?cost:(Some sub) g ~domain:comp ~epsilon:eps' in
          let clustering = wr.clustering in
          (* giant-cluster check: information gathering over the Steiner
             trees costs depth · congestion rounds *)
          Congest.Cost.charge sub
            ~rounds:(max 1 (wr.depth * max 1 wr.congestion))
            ~messages:comp_size ~max_bits:(2 * id_bits) "transform.size_check";
          let giant =
            let best = ref (-1) in
            Array.iteri
              (fun c members ->
                if float_of_int (List.length members) > threshold then best := c)
              (Array.of_list (Cluster.Clustering.clusters clustering));
            !best
          in
          if giant < 0 then begin
            (* Case I: A's unclustered nodes die; alive components (each a
               subset of one cluster, hence <= n/2^i) continue *)
            let alive = Mask.copy comp in
            List.iter
              (fun v -> Mask.remove alive v)
              (Cluster.Clustering.unclustered clustering);
            List.iter
              (fun c -> next_level := Mask.of_list n_graph c :: !next_level)
              (Components.components ~mask:alive g)
          end
          else begin
            (* Case II: grow a strong-diameter ball from the giant
               cluster's Steiner root that swallows the whole cluster *)
            let root = wr.forest.(giant).Cluster.Steiner.root in
            let dist = Bfs.distances ~mask:comp g ~source:root in
            let maxd = Array.fold_left max 0 dist in
            let cum = Array.make (maxd + 1) 0 in
            Array.iter (fun d -> if d >= 0 then cum.(d) <- cum.(d) + 1) dist;
            for k = 1 to maxd do
              cum.(k) <- cum.(k) + cum.(k - 1)
            done;
            let ball k = if k > maxd then cum.(maxd) else cum.(k) in
            let lo = min wr.depth maxd in
            let rec find r =
              if r >= lo + growth_limit then r
              else if
                float_of_int (ball r)
                >= (1.0 -. (epsilon /. 2.0)) *. float_of_int (ball (r + 1))
              then r
              else find (r + 1)
            in
            let r_star = find lo in
            if r_star > !max_ball_radius then max_ball_radius := r_star;
            Congest.Cost.charge sub ~rounds:(r_star + 2) ~messages:comp_size
              ~max_bits:(2 * id_bits) "transform.ball_bfs";
            let cluster_id = fresh_cluster () in
            let rest = Mask.copy comp in
            Mask.iter comp (fun v ->
                if dist.(v) >= 0 && dist.(v) <= r_star then begin
                  output.(v) <- cluster_id;
                  Mask.remove rest v
                end
                else if dist.(v) = r_star + 1 then Mask.remove rest v);
            List.iter
              (fun c -> next_level := Mask.of_list n_graph c :: !next_level)
              (Components.components ~mask:rest g)
          end
        end)
      !level;
    (match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.parallel c !sub_meters
          (Printf.sprintf "transform.level_%02d" !i));
    level := !next_level;
    incr i;
    Congest.Span.exit trace
  done;
  Congest.Span.exit trace;
  let clustering = Cluster.Clustering.make g ~cluster_of:output in
  let carving = Cluster.Carving.make clustering ~domain in
  ( carving,
    {
      iterations = !iterations;
      weak_invocations = !weak_invocations;
      max_ball_radius = !max_ball_radius;
    } )

(* Section 2 remark: remove the global-n assumption by pre-clustering with
   the weak carving at eps/2, then transforming inside each weak cluster
   with its own local node count. *)
let strong_carve_unknown_n ?cost ~weak ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Transform.strong_carve_unknown_n: epsilon must be in (0, 1)";
  let n_graph = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n_graph in
  let half = epsilon /. 2.0 in
  let trace = Option.bind cost Congest.Cost.trace in
  Congest.Span.enter trace "transform_unknown_n";
  let pre = weak ?cost g ~domain ~epsilon:half in
  let output = Array.make n_graph (-1) in
  let next = ref 0 in
  let sub_meters = ref [] in
  List.iter
    (fun members ->
      let sub = Congest.Cost.create () in
      sub_meters := sub :: !sub_meters;
      let cluster_domain = Mask.of_list n_graph members in
      let carving, _ =
        strong_carve ~cost:sub ~weak ~domain:cluster_domain g ~epsilon:half
      in
      let clustering = carving.Cluster.Carving.clustering in
      List.iter
        (fun sub_members ->
          let id = !next in
          incr next;
          List.iter (fun v -> output.(v) <- id) sub_members)
        (Cluster.Clustering.clusters clustering))
    (Cluster.Clustering.clusters pre.clustering);
  (match cost with
  | None -> ()
  | Some c -> Congest.Cost.parallel c !sub_meters "transform.unknown_n");
  Congest.Span.exit trace;
  let clustering = Cluster.Clustering.make g ~cluster_of:output in
  Cluster.Carving.make clustering ~domain
