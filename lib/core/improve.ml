open Dsgraph

type strong_carver =
  ?cost:Congest.Cost.t ->
  Dsgraph.Graph.t ->
  domain:Dsgraph.Mask.t ->
  epsilon:float ->
  Cluster.Carving.t

type stats = {
  levels : int;
  carver_invocations : int;
  lemma_invocations : int;
  cuts_taken : int;
  components_taken : int;
}

let log2_ceil n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (2 * k) in
  max 1 (go 0 1)

let improve ?cost ~strong ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Improve.improve: epsilon must be in (0, 1)";
  let n_graph = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n_graph in
  let n = max (Mask.count domain) 2 in
  (* A runs with Θ(ε/log n); Lemma 3.1 has its own 1/log n factor inside,
     so it receives ε/4 (its per-call boundary is O(ε n / log n)). *)
  let eps_a = epsilon /. (4.0 *. float_of_int (log2_ceil n)) in
  let eps_lemma = epsilon /. 4.0 in
  let output = Array.make n_graph (-1) in
  let next_cluster = ref 0 in
  let stats =
    ref
      {
        levels = 0;
        carver_invocations = 0;
        lemma_invocations = 0;
        cuts_taken = 0;
        components_taken = 0;
      }
  in
  let active = ref [ Mask.copy domain ] in
  let trace = Option.bind cost Congest.Cost.trace in
  Congest.Span.enter trace "improve";
  while List.exists (fun m -> Mask.count m > 0) !active do
    stats := { !stats with levels = !stats.levels + 1 };
    Congest.Span.enter_idx trace "level" !stats.levels;
    (* one carving invocation on the union of all active parts; parts are
       pairwise non-adjacent so each resulting cluster stays in one part *)
    let union = Mask.empty n_graph in
    List.iter (fun m -> Mask.iter m (fun v -> Mask.add union v)) !active;
    stats := { !stats with carver_invocations = !stats.carver_invocations + 1 };
    let carving = strong ?cost g ~domain:union ~epsilon:eps_a in
    let clustering = carving.Cluster.Carving.clustering in
    let next_active = ref [] in
    let sub_meters = ref [] in
    List.iter
      (fun members ->
        let sub = Congest.Cost.create () in
        sub_meters := sub :: !sub_meters;
        let part = Mask.of_list n_graph members in
        stats := { !stats with lemma_invocations = !stats.lemma_invocations + 1 };
        match Sparse_cut.run ~cost:sub ~epsilon:eps_lemma g ~domain:part with
        | Sparse_cut.Cut { v1; v2; removed = _ } ->
            stats := { !stats with cuts_taken = !stats.cuts_taken + 1 };
            if v1 <> [] then next_active := Mask.of_list n_graph v1 :: !next_active;
            if v2 <> [] then next_active := Mask.of_list n_graph v2 :: !next_active
        | Sparse_cut.Component { u; boundary } ->
            stats :=
              { !stats with components_taken = !stats.components_taken + 1 };
            let id = !next_cluster in
            incr next_cluster;
            List.iter (fun v -> output.(v) <- id) u;
            let rest = Mask.copy part in
            List.iter (fun v -> Mask.remove rest v) u;
            List.iter (fun v -> Mask.remove rest v) boundary;
            if Mask.count rest > 0 then next_active := rest :: !next_active)
      (Cluster.Clustering.clusters clustering);
    (match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.parallel c !sub_meters
          (Printf.sprintf "improve.level_%02d" !stats.levels));
    active := !next_active;
    Congest.Span.exit trace
  done;
  Congest.Span.exit trace;
  let clustering = Cluster.Clustering.make g ~cluster_of:output in
  (Cluster.Carving.make clustering ~domain, !stats)
