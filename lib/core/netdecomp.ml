open Dsgraph

let of_carver ?cost ?(epsilon = 0.5) ?domain (carver : Strong_carving.carver) g
    =
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let remaining = Mask.copy domain in
  let cluster_of = Array.make n (-1) in
  let node_color = Array.make n (-1) in
  let next_cluster = ref 0 in
  let color = ref 0 in
  let trace = Option.bind cost Congest.Cost.trace in
  Congest.Span.enter trace "netdecomp";
  while Mask.count remaining > 0 do
    Congest.Span.enter_idx trace "color" !color;
    let carving = carver ?cost ~domain:remaining g ~epsilon in
    let clustering = carving.Cluster.Carving.clustering in
    if Cluster.Clustering.clustered_count clustering = 0 then
      failwith "Netdecomp.of_carver: carving clustered no nodes";
    List.iter
      (fun members ->
        let id = !next_cluster in
        incr next_cluster;
        List.iter
          (fun v ->
            cluster_of.(v) <- id;
            node_color.(v) <- !color;
            Mask.remove remaining v)
          members)
      (Cluster.Clustering.clusters clustering);
    incr color;
    Congest.Span.exit trace
  done;
  Congest.Span.exit trace;
  let clustering = Cluster.Clustering.make g ~cluster_of in
  (* [Clustering.make] renumbers clusters by first node appearance, so read
     each cluster's color back off one of its members *)
  let color_of_cluster =
    Array.init (Cluster.Clustering.num_clusters clustering) (fun c ->
        node_color.(List.hd (Cluster.Clustering.members clustering c)))
  in
  Cluster.Decomposition.make clustering ~color_of_cluster

let strong ?cost ?(preset = Weakdiam.Weak_carving.default_preset) g =
  let carver ?cost ?domain g ~epsilon =
    fst (Strong_carving.carve ?cost ~preset ?domain g ~epsilon)
  in
  of_carver ?cost carver g

let strong_improved ?cost ?(preset = Weakdiam.Weak_carving.default_preset) g =
  let carver ?cost ?domain g ~epsilon =
    fst (Strong_carving.carve_improved ?cost ~preset ?domain g ~epsilon)
  in
  of_carver ?cost carver g

let weak ?cost ?(preset = Weakdiam.Weak_carving.default_preset) g =
  let carver ?cost ?domain g ~epsilon =
    let r = Weakdiam.Weak_carving.carve ~preset ?cost ?domain g ~epsilon in
    r.carving
  in
  of_carver ?cost carver g
