(** Theorem 2.1 — the paper's core contribution: a message-efficient
    deterministic transformation from {e any} weak-diameter ball carving
    algorithm [A] into a strong-diameter ball carving algorithm [B].

    The transformation runs [log n] size-halving iterations. In iteration
    [i], on each connected component [S] of alive nodes (guaranteed
    [|S| <= n/2^(i-1)]), it invokes [A] with boundary parameter
    [ε' = ε/(2 log n)]:
    - {b Case I}: every weak cluster has at most [n/2^i] nodes. Then [A]'s
      unclustered nodes die and each alive component (a subset of one
      cluster) moves to the next iteration.
    - {b Case II}: some cluster [C] exceeds [n/2^i] nodes (at most one
      can). A BFS from the root [a] of [C]'s Steiner tree grows a ball,
      starting at the tree depth and for [O(log n/ε)] more hops, until a
      radius [r*] with [|B_{r*}| >= (1 - ε/2)·|B_{r*+1}|] appears. The
      ball [B_{r*}(a)] — which covers all of [C] — becomes one cluster of
      the output, the next layer dies, and the remaining components
      (each [<= n/2^i] nodes) move on.

    Dead fraction: [≤ ε/2] from the [A]-invocations plus [≤ ε/2] from the
    carved-ball boundaries, i.e. [≤ ε] total. Each output cluster has
    strong diameter [<= 2·R(n, ε/(2 log n)) + O(log n/ε)]. *)

type weak_result = {
  clustering : Cluster.Clustering.t;
      (** non-adjacent clusters on the domain; unclustered = removed *)
  forest : Cluster.Steiner.forest;
  depth : int;  (** measured Steiner depth [R] *)
  congestion : int;  (** measured congestion [L] *)
}

type weak_carver =
  ?cost:Congest.Cost.t ->
  Dsgraph.Graph.t ->
  domain:Dsgraph.Mask.t ->
  epsilon:float ->
  weak_result
(** The black box [A] of Theorem 2.1. *)

type stats = {
  iterations : int;  (** size-halving levels actually used *)
  weak_invocations : int;
  max_ball_radius : int;  (** largest [r*] used in Case II *)
}

val strong_carve :
  ?cost:Congest.Cost.t ->
  weak:weak_carver ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * stats
(** [strong_carve ~weak g ~epsilon] removes at most an [ε] fraction of the
    domain so that every cluster (equivalently, every remaining connected
    component) induces a connected subgraph of bounded diameter.

    Cost charging (DESIGN.md §5): components of one iteration level run in
    parallel (per-level round cost = max over components); per component,
    the [A] invocation charges through the shared meter, the giant-cluster
    size check charges [depth·congestion] rounds, and the Case II BFS
    charges [r* + 1] rounds. *)

val ball_growth_limit : n:int -> epsilon:float -> int
(** The number of radius-growth steps [O(log n/ε)] Case II may need:
    smallest [K] with [(1/(1-ε/2))^K > n]. Exposed for tests. *)

val strong_carve_unknown_n :
  ?cost:Congest.Cost.t ->
  weak:weak_carver ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t
(** The paper's Section 2 remark: Theorem 2.1 assumes the node count is
    global knowledge, and the assumption is removed by first running the
    weak carving with boundary parameter [ε/2], letting each cluster count
    its own [n' = |C|], and then applying the transformation inside each
    cluster with parameter [ε/2] (using that cluster-local [n']). This
    function implements exactly that wrapper; dead fraction
    [<= ε/2 + ε/2 = ε], same diameter shape. *)
