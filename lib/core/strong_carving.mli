(** Instantiations of the paper's strong-diameter ball carving theorems.

    - {!carve} is Theorem 2.2: the Theorem 2.1 transformation
      ({!Transform}) applied to the deterministic weak-diameter carving of
      [lib/weakdiam], giving strong diameter [O(log^3 n/ε)] in
      [O(log^7 n/ε^2)] rounds.
    - {!carve_improved} is Theorem 3.3: Theorem 3.2 ({!Improve}) applied
      to Theorem 2.2, giving strong diameter [O(log^2 n/ε)] in
      [O(log^10 n/ε^2)] rounds. *)

val weak_of_preset : Weakdiam.Weak_carving.preset -> Transform.weak_carver
(** Package the weak-diameter engine as the black box [A] of
    Theorem 2.1. *)

val carve :
  ?cost:Congest.Cost.t ->
  ?preset:Weakdiam.Weak_carving.preset ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * Transform.stats
(** Theorem 2.2. Every output cluster induces a connected subgraph;
    clusters are pairwise non-adjacent; at most an [ε] fraction of the
    domain is dead. *)

val carve_improved :
  ?cost:Congest.Cost.t ->
  ?preset:Weakdiam.Weak_carving.preset ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * Improve.stats
(** Theorem 3.3: same contract with the improved [O(log^2 n/ε)] diameter
    shape. *)

type carver =
  ?cost:Congest.Cost.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t
(** Uniform signature shared by every strong carver in this repository
    (paper algorithms and baselines), used by the decomposition reduction
    and the benchmarks. *)

val as_carver :
  (?cost:Congest.Cost.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * 'a) ->
  carver
(** Drop the stats component. *)
