let weak_of_preset preset : Transform.weak_carver =
 fun ?cost g ~domain ~epsilon ->
  let r = Weakdiam.Weak_carving.carve ~preset ?cost ~domain g ~epsilon in
  {
    Transform.clustering = r.carving.Cluster.Carving.clustering;
    forest = r.forest;
    depth = r.max_depth;
    congestion = r.congestion;
  }

let carve ?cost ?(preset = Weakdiam.Weak_carving.default_preset) ?domain g
    ~epsilon =
  Congest.Span.with_span
    (Option.bind cost Congest.Cost.trace)
    "strong_carving"
    (fun () ->
      Transform.strong_carve ?cost ~weak:(weak_of_preset preset) ?domain g
        ~epsilon)

let carve_improved ?cost ?(preset = Weakdiam.Weak_carving.default_preset)
    ?domain g ~epsilon =
  let strong ?cost g ~domain ~epsilon =
    fst (carve ?cost ~preset ~domain g ~epsilon)
  in
  Congest.Span.with_span
    (Option.bind cost Congest.Cost.trace)
    "strong_carving_improved"
    (fun () -> Improve.improve ?cost ~strong ?domain g ~epsilon)

type carver =
  ?cost:Congest.Cost.t ->
  ?domain:Dsgraph.Mask.t ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t

let as_carver f : carver = fun ?cost ?domain g ~epsilon -> fst (f ?cost ?domain g ~epsilon)
