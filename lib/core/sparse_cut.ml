open Dsgraph

type outcome =
  | Cut of { v1 : int list; v2 : int list; removed : int list }
  | Component of { u : int list; boundary : int list }

let delta ~n ~epsilon = epsilon /. Float.max (log (float_of_int n)) 1.0

let ratio_bound ~n ~epsilon = 1.0 +. delta ~n ~epsilon

let window ~n ~epsilon =
  let d = delta ~n ~epsilon in
  (* (1+d)^K >= 3 suffices: a set of size >= n/3 cannot keep growing by
     (1+d) for K layers without exceeding n *)
  int_of_float (Float.ceil (log 3.0 /. log (1.0 +. d))) + 1

(* Cumulative ball sizes from [sources] in G[domain]; position [k] holds
   |B_k|, extended conceptually by the total count beyond the last layer.
   Also returns the distance array and the max finite distance. *)
let balls ?cost g ~domain ~sources =
  let dist = Bfs.multi_distances ~mask:domain g ~sources in
  let maxd = Array.fold_left max 0 dist in
  let cum = Array.make (maxd + 1) 0 in
  Array.iter (fun d -> if d >= 0 then cum.(d) <- cum.(d) + 1) dist;
  for k = 1 to maxd do
    cum.(k) <- cum.(k) + cum.(k - 1)
  done;
  (match cost with
  | None -> ()
  | Some c ->
      Congest.Cost.charge c ~rounds:(maxd + 1) ~messages:(Mask.count domain)
        ~max_bits:(2 * Congest.Bits.id_bits ~n:(Graph.n g))
        "lemma31.bfs");
  (dist, cum, maxd)

let ball_size cum maxd total k = if k > maxd then total else cum.(k)

(* smallest k with 3·|B_k| >= bound·total; the BFS covers the whole
   connected domain so such k always exists for bound <= 3 *)
let first_radius cum maxd total ~num =
  let rec go k =
    if 3 * ball_size cum maxd total k >= num * total then k else go (k + 1)
  in
  go 0

(* r in [lo, hi] minimizing |B_{r+1}| / |B_r| *)
let weakest_layer cum maxd total ~lo ~hi =
  let best = ref lo and best_ratio = ref infinity in
  for r = lo to hi do
    let br = ball_size cum maxd total r in
    let br1 = ball_size cum maxd total (r + 1) in
    if br > 0 then begin
      let ratio = float_of_int br1 /. float_of_int br in
      if ratio < !best_ratio then begin
        best_ratio := ratio;
        best := r
      end
    end
  done;
  !best

(* Split S in half along the preorder traversal of a BFS tree rooted at the
   smallest-identifier node of the domain (the paper's in-order trick for
   doing this in O(D) rounds). *)
let split_half g ~domain ~s =
  let root = List.hd (Mask.to_list domain) in
  let parent = Bfs.parents ~mask:domain g ~source:root in
  let n = Graph.n g in
  let children = Array.make n [] in
  for v = n - 1 downto 0 do
    if parent.(v) >= 0 && parent.(v) <> v then
      children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  let in_s = Mask.of_list n s in
  let order = ref [] in
  (* explicit stack: tree depth can reach n on path-like graphs *)
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    if Mask.mem in_s v then order := v :: !order;
    List.iter (fun c -> Stack.push c stack) children.(v)
  done;
  let order = List.rev !order in
  let k = List.length order in
  let rec take acc i = function
    | [] -> (List.rev acc, [])
    | x :: rest ->
        if i < (k + 1) / 2 then take (x :: acc) (i + 1) rest
        else (List.rev acc, x :: rest)
  in
  take [] 0 order

let run ?cost ?(epsilon = 0.5) g ~domain =
  let n = Mask.count domain in
  if n = 0 then invalid_arg "Sparse_cut.run: empty domain";
  let members = Mask.to_list domain in
  let dist0 = Bfs.multi_distances ~mask:domain g ~sources:[ List.hd members ] in
  List.iter
    (fun v ->
      if dist0.(v) < 0 then invalid_arg "Sparse_cut.run: domain disconnected")
    members;
  let k_window = window ~n ~epsilon in
  let collect dist pred =
    List.filter (fun v -> pred dist.(v)) members
  in
  let rec iterate s =
    match s with
    | [ v ] ->
        (* terminal case: carve the weakest layer past a around v *)
        let dist, cum, maxd = balls ?cost g ~domain ~sources:[ v ] in
        let a = first_radius cum maxd n ~num:1 in
        let r = weakest_layer cum maxd n ~lo:a ~hi:(a + k_window) in
        Component
          {
            u = collect dist (fun d -> d >= 0 && d <= r);
            boundary = collect dist (fun d -> d = r + 1);
          }
    | _ ->
        let dist, cum, maxd = balls ?cost g ~domain ~sources:s in
        let a = first_radius cum maxd n ~num:1 in
        let b = first_radius cum maxd n ~num:2 in
        if b - a >= k_window + 2 then begin
          let r = weakest_layer cum maxd n ~lo:a ~hi:(b - 2) in
          Cut
            {
              v1 = collect dist (fun d -> d >= 0 && d <= r);
              v2 = collect dist (fun d -> d >= r + 2);
              removed = collect dist (fun d -> d = r + 1);
            }
        end
        else begin
          let s1, s2 = split_half g ~domain ~s in
          (match cost with
          | None -> ()
          | Some c ->
              Congest.Cost.charge c ~rounds:(maxd + 1)
                ~messages:(Mask.count domain) "lemma31.split");
          let _, cum1, maxd1 = balls ?cost g ~domain ~sources:s1 in
          let _, cum2, maxd2 = balls ?cost g ~domain ~sources:s2 in
          let a1 = first_radius cum1 maxd1 n ~num:1 in
          let a2 = first_radius cum2 maxd2 n ~num:1 in
          if a1 <= a2 then iterate s1 else iterate s2
        end
  in
  iterate members
