(** Network decompositions from ball carvings — the standard [LS93]
    reduction used by Theorems 2.3 and 3.4: repeat the carving with
    [ε = 1/2] on the not-yet-clustered nodes; the clusters produced by
    repetition [i] get color [i]. Each repetition clusters at least half
    of the remaining nodes, so [O(log n)] colors suffice. *)

val of_carver :
  ?cost:Congest.Cost.t ->
  ?epsilon:float ->
  ?domain:Dsgraph.Mask.t ->
  Strong_carving.carver ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** [of_carver carver g] builds a decomposition of the domain (default:
    all nodes). [epsilon] (default [1/2]) is the per-repetition boundary
    parameter; any value in (0,1) yields [O(log_{1/(1-ε)} n)] colors.
    @raise Failure if a repetition clusters nothing (broken carver). *)

val strong :
  ?cost:Congest.Cost.t ->
  ?preset:Weakdiam.Weak_carving.preset ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** Theorem 2.3: strong-diameter network decomposition with [O(log n)]
    colors and [O(log^3 n)]-shaped cluster diameter. *)

val strong_improved :
  ?cost:Congest.Cost.t ->
  ?preset:Weakdiam.Weak_carving.preset ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** Theorem 3.4: strong-diameter network decomposition with [O(log n)]
    colors and [O(log^2 n)]-shaped cluster diameter. *)

val weak :
  ?cost:Congest.Cost.t ->
  ?preset:Weakdiam.Weak_carving.preset ->
  Dsgraph.Graph.t ->
  Cluster.Decomposition.t
(** The weak-diameter decomposition rows of Table 1 ([RG20]/[GGR21]):
    iterate the weak carving directly. Clusters may induce disconnected
    subgraphs; their {e weak} diameter is the relevant parameter. *)
