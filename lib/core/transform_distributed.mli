(** Theorem 2.1 executed as a sequence of {e genuinely distributed} stages
    on {!Congest.Sim} — the paper's own algorithm as message passing.

    Each size-halving iteration runs, per connected component of alive
    nodes:
    + the weak-diameter carving as a real node program
      ({!Weakdiam.Distributed}),
    + the Case II ball carving as three more node programs: a BFS wave
      from the giant cluster's Steiner root, repeated paired-count
      convergecasts over the BFS tree (how many nodes lie within radius
      [r] and [r+1]) until the [|B_r| >= (1-ε/2)·|B_{r+1}|] radius is
      found, and a broadcast of [r*] after which each node decides
      locally whether it is clustered, dead, or survives to the next
      iteration.

    The harness only orchestrates stage boundaries and carries each
    node's own local state between stages; all communication inside a
    stage is simulated message passing within the CONGEST bandwidth. As
    with {!Weakdiam.Distributed}, schedule lengths and the giant-cluster
    threshold comparison are oracle-assisted (worst-case bounds in a real
    deployment); the test suite asserts the result equals the
    centralized {!Transform.strong_carve} exactly. *)

type stats = {
  iterations : int;
  weak_rounds : int;  (** simulated rounds in the weak-carving stages
                          (parallel components: max per iteration) *)
  ball_rounds : int;  (** simulated rounds in the Case II stages *)
  max_bits : int;  (** largest message over all stages *)
  all_matched : bool;  (** every weak stage matched its engine *)
}

val strong_carve :
  ?preset:Weakdiam.Weak_carving.preset ->
  ?trace:Congest.Trace.sink ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  Cluster.Carving.t * stats
(** When [trace] is attached, every stage's simulated run reports into
    it, bracketed by spans
    [transform_sim/iter=<i>/{weakdiam_sim,bfs,pair_counts,broadcast}]
    so per-stage rounds and messages can be rolled up with
    {!Congest.Span.rollups}. *)

val matches_centralized :
  ?preset:Weakdiam.Weak_carving.preset ->
  Dsgraph.Graph.t ->
  epsilon:float ->
  bool
(** Runs both the distributed and the centralized Theorem 2.1 and compares
    the clusterings node by node. *)
