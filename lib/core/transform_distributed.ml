open Dsgraph

type stats = {
  iterations : int;
  weak_rounds : int;
  ball_rounds : int;
  max_bits : int;
  all_matched : bool;
}

let log2_ceil n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (2 * k) in
  max 1 (go 0 1)

(* ------------------------------------------------------------------ *)
(* Stage B1: masked BFS wave from one source                            *)
(* ------------------------------------------------------------------ *)

type bfs_state = { dist : int; parent : int; announced : bool }

let bfs_stage ?trace g ~mask ~source =
  let n = Graph.n g in
  let msg_bits = Congest.Bits.int_bits (max 1 n) in
  let program =
    {
      Congest.Sim.init =
        (fun ~node ~neighbors:_ ->
          if node = source then { dist = 0; parent = source; announced = false }
          else { dist = -1; parent = -1; announced = false });
      round =
        (fun ~node ~state ~inbox ->
          if not (Mask.mem mask node) then (state, [], true)
          else
            let state =
              if state.dist >= 0 then state
              else
                match inbox with
                | [] -> state
                | (u, d) :: rest ->
                    let best_u, best_d =
                      List.fold_left
                        (fun (bu, bd) (u', d') ->
                          if d' < bd then (u', d') else (bu, bd))
                        (u, d) rest
                    in
                    { dist = best_d + 1; parent = best_u; announced = false }
            in
            if state.dist >= 0 && not state.announced then
              let out =
                Array.to_list
                  (Array.map (fun nb -> (nb, state.dist)) (Graph.neighbors g node))
              in
              ({ state with announced = true }, out, false)
            else (state, [], true));
    }
  in
  let states, stats =
    Congest.Sim.simulate
      ~config:{ Congest.Sim.Config.default with trace }
      ~bits:(fun _ -> msg_bits) g program
  in
  ( Array.map (fun s -> s.dist) states,
    Array.map (fun s -> s.parent) states,
    stats )

(* ------------------------------------------------------------------ *)
(* Stage B2: paired-count convergecast over a rooted tree               *)
(* (how many nodes have dist <= r and dist <= r+1)                      *)
(* ------------------------------------------------------------------ *)

type count_msg = Child | Pair of int * int

type count_state = {
  round_no : int;
  pending : int;
  acc_a : int;
  acc_b : int;
  sent_up : bool;
}

let pair_counts_stage ?trace g ~parent ~contrib =
  let n = Graph.n g in
  let msg_bits = (2 * Congest.Bits.int_bits (max 1 n)) + 2 in
  let program =
    {
      Congest.Sim.init =
        (fun ~node ~neighbors:_ ->
          let a, b = contrib node in
          { round_no = 0; pending = 0; acc_a = a; acc_b = b; sent_up = false });
      round =
        (fun ~node ~state ~inbox ->
          if parent.(node) = -1 then (state, [], true)
          else
            let state = { state with round_no = state.round_no + 1 } in
            if state.round_no = 1 then
              let out =
                if parent.(node) <> node then [ (parent.(node), Child) ] else []
              in
              (state, out, false)
            else
              let state =
                List.fold_left
                  (fun st (_, m) ->
                    match m with
                    | Child -> { st with pending = st.pending + 1 }
                    | Pair (a, b) ->
                        {
                          st with
                          pending = st.pending - 1;
                          acc_a = st.acc_a + a;
                          acc_b = st.acc_b + b;
                        })
                  state inbox
              in
              let is_root = parent.(node) = node in
              if state.pending = 0 && (not state.sent_up) && not is_root then
                ( { state with sent_up = true },
                  [ (parent.(node), Pair (state.acc_a, state.acc_b)) ],
                  false )
              else (state, [], state.sent_up || (is_root && state.pending = 0)));
    }
  in
  let states, stats =
    Congest.Sim.simulate
      ~config:{ Congest.Sim.Config.default with trace }
      ~bits:(fun m -> match m with Child -> 1 | Pair _ -> msg_bits)
      g program
  in
  (Array.map (fun s -> (s.acc_a, s.acc_b)) states, stats)

(* ------------------------------------------------------------------ *)
(* Stage B3: broadcast a value down a rooted tree                       *)
(* ------------------------------------------------------------------ *)

type bcast_state = { value : int; relayed : bool }

let broadcast_stage ?trace g ~parent ~root ~value =
  let n = Graph.n g in
  let msg_bits = Congest.Bits.int_bits (max 1 (n + value)) in
  (* children lists derived implicitly: a node relays to neighbors that
     name it as parent *)
  let program =
    {
      Congest.Sim.init =
        (fun ~node ~neighbors:_ ->
          if node = root then { value; relayed = false }
          else { value = -1; relayed = false });
      round =
        (fun ~node ~state ~inbox ->
          if parent.(node) = -1 then (state, [], true)
          else
            let state =
              match inbox with
              | (_, v) :: _ when state.value = -1 -> { state with value = v }
              | _ -> state
            in
            if state.value >= 0 && not state.relayed then begin
              let out = ref [] in
              Graph.iter_neighbors g node (fun w ->
                  if parent.(w) = node && w <> node then
                    out := (w, state.value) :: !out);
              ({ state with relayed = true }, !out, false)
            end
            else (state, [], state.value >= 0));
    }
  in
  let states, stats =
    Congest.Sim.simulate
      ~config:{ Congest.Sim.Config.default with trace }
      ~bits:(fun _ -> msg_bits) g program
  in
  (Array.map (fun s -> s.value) states, stats)

(* ------------------------------------------------------------------ *)
(* The composed transformation                                          *)
(* ------------------------------------------------------------------ *)

let strong_carve ?(preset = Weakdiam.Weak_carving.default_preset) ?trace g
    ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Transform_distributed.strong_carve: epsilon must be in (0, 1)";
  let n_graph = Graph.n g in
  let n = max n_graph 2 in
  let eps' = epsilon /. (2.0 *. float_of_int (log2_ceil n)) in
  let growth_limit = Transform.ball_growth_limit ~n ~epsilon in
  let output = Array.make n_graph (-1) in
  let next_cluster = ref 0 in
  let fresh () =
    let c = !next_cluster in
    incr next_cluster;
    c
  in
  let weak_rounds = ref 0 in
  let ball_rounds = ref 0 in
  let max_bits = ref 0 in
  let all_matched = ref true in
  let iterations = ref 0 in
  let note_bits (s : Congest.Sim.stats) =
    if s.max_bits_seen > !max_bits then max_bits := s.max_bits_seen
  in
  let level = ref (Components.components g |> List.map (Mask.of_list n_graph)) in
  let i = ref 1 in
  Congest.Span.enter trace "transform_sim";
  while !level <> [] do
    Congest.Span.enter_idx trace "iter" !i;
    incr iterations;
    let threshold = float_of_int n /. (2.0 ** float_of_int !i) in
    let next_level = ref [] in
    let iter_weak = ref 0 and iter_ball = ref 0 in
    List.iter
      (fun comp ->
        if Mask.count comp = 1 then
          Mask.iter comp (fun v -> output.(v) <- fresh ())
        else begin
          (* stage W: distributed weak carving on this component *)
          let wd =
            Weakdiam.Distributed.carve ~preset ~domain:comp ?trace g
              ~epsilon:eps'
          in
          if not (Weakdiam.Distributed.matches_engine wd) then
            all_matched := false;
          note_bits wd.Weakdiam.Distributed.sim_stats;
          iter_weak :=
            max !iter_weak
              wd.Weakdiam.Distributed.sim_stats.Congest.Sim.rounds_used;
          let clustering = wd.Weakdiam.Distributed.carving.Cluster.Carving.clustering in
          let giant =
            let best = ref (-1) in
            List.iteri
              (fun c members ->
                if float_of_int (List.length members) > threshold then best := c)
              (Cluster.Clustering.clusters clustering);
            !best
          in
          if giant < 0 then begin
            (* Case I *)
            let alive = Mask.copy comp in
            List.iter
              (fun v -> Mask.remove alive v)
              (Cluster.Clustering.unclustered clustering);
            List.iter
              (fun c -> next_level := Mask.of_list n_graph c :: !next_level)
              (Components.components ~mask:alive g)
          end
          else begin
            (* Case II, as three simulated stages *)
            let root =
              wd.Weakdiam.Distributed.engine.Weakdiam.Weak_carving.forest.(giant)
                .Cluster.Steiner.root
            in
            Congest.Span.enter trace "bfs";
            let dist, parent, b1 = bfs_stage ?trace g ~mask:comp ~source:root in
            Congest.Span.exit trace;
            note_bits b1;
            let stage_rounds = ref b1.Congest.Sim.rounds_used in
            let maxd = Array.fold_left max 0 dist in
            let lo =
              min wd.Weakdiam.Distributed.engine.Weakdiam.Weak_carving.max_depth
                maxd
            in
            let ball_count r =
              (* one simulated paired-count convergecast *)
              Congest.Span.enter trace "pair_counts";
              let totals, s =
                pair_counts_stage ?trace g ~parent ~contrib:(fun v ->
                    if dist.(v) < 0 then (0, 0)
                    else
                      ( (if dist.(v) <= r then 1 else 0),
                        if dist.(v) <= r + 1 then 1 else 0 ))
              in
              Congest.Span.exit trace;
              note_bits s;
              stage_rounds := !stage_rounds + s.Congest.Sim.rounds_used;
              totals.(root)
            in
            let rec find r =
              if r >= lo + growth_limit then r
              else
                let br, br1 = ball_count r in
                if float_of_int br >= (1.0 -. (epsilon /. 2.0)) *. float_of_int br1
                then r
                else find (r + 1)
            in
            let r_star = find lo in
            Congest.Span.enter trace "broadcast";
            let r_known, b3 =
              broadcast_stage ?trace g ~parent ~root ~value:r_star
            in
            Congest.Span.exit trace;
            note_bits b3;
            stage_rounds := !stage_rounds + b3.Congest.Sim.rounds_used;
            iter_ball := max !iter_ball !stage_rounds;
            let cluster_id = fresh () in
            let rest = Mask.copy comp in
            ignore r_known;
            Mask.iter comp (fun v ->
                (* each node decides locally from its distance and the
                   r-star value that stage B3 delivered to every tree node *)
                if dist.(v) >= 0 && dist.(v) <= r_star then begin
                  output.(v) <- cluster_id;
                  Mask.remove rest v
                end
                else if dist.(v) = r_star + 1 then Mask.remove rest v);
            List.iter
              (fun c -> next_level := Mask.of_list n_graph c :: !next_level)
              (Components.components ~mask:rest g)
          end
        end)
      !level;
    weak_rounds := !weak_rounds + !iter_weak;
    ball_rounds := !ball_rounds + !iter_ball;
    level := !next_level;
    incr i;
    Congest.Span.exit trace
  done;
  Congest.Span.exit trace;
  let clustering = Cluster.Clustering.make g ~cluster_of:output in
  let carving = Cluster.Carving.make clustering ~domain:(Mask.full n_graph) in
  ( carving,
    {
      iterations = !iterations;
      weak_rounds = !weak_rounds;
      ball_rounds = !ball_rounds;
      max_bits = !max_bits;
      all_matched = !all_matched;
    } )

let matches_centralized ?(preset = Weakdiam.Weak_carving.default_preset) g
    ~epsilon =
  let distributed, stats = strong_carve ~preset g ~epsilon in
  let weak = Strong_carving.weak_of_preset preset in
  let central, _ = Transform.strong_carve ~weak g ~epsilon in
  let a = distributed.Cluster.Carving.clustering in
  let b = central.Cluster.Carving.clustering in
  let ok = ref stats.all_matched in
  for v = 0 to Graph.n g - 1 do
    if Cluster.Clustering.cluster_of a v <> Cluster.Clustering.cluster_of b v
    then ok := false
  done;
  !ok
