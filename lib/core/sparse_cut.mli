(** Lemma 3.1: balanced sparse cut, or large small-diameter component.

    Given a connected [D]-diameter graph and [0 < ε < 1], in [O(D log n)]
    CONGEST rounds return either
    - a {e balanced sparse cut}: non-adjacent [V1, V2] with
      [|V1|, |V2| >= n/3] and [O(ε n / log n)] removed nodes, or
    - a {e large small-diameter component}: [U] with [|U| >= n/3], induced
      diameter [O(log^2 n / ε)], and only [O(ε n / log n)] nodes of
      [V \ U] adjacent to [U].

    The algorithm halves a pivot set [S] (initially everything) for
    [O(log n)] iterations. With [B_k(S)] the radius-[k] neighborhood of
    [S], let [a] (resp. [b]) be the smallest radius with [|B_k| >= n/3]
    (resp. [>= 2n/3]). A wide [\[a, b\]] window must contain a weak layer —
    that layer is a balanced sparse cut. A narrow window lets us replace
    [S] by whichever half keeps [a] small ([min(a1, a2) <= b]). Once [S]
    is a single node, the ball [B_{r*}(v)] at the weakest layer past [a]
    is the large component. *)

type outcome =
  | Cut of { v1 : int list; v2 : int list; removed : int list }
      (** [v1] and [v2] are non-adjacent; [removed] is the separating
          layer (dead nodes). The three sets partition the domain. *)
  | Component of { u : int list; boundary : int list }
      (** [u] induces a small-diameter subgraph; [boundary] is the set of
          outside nodes adjacent to [u] (to be killed by callers that need
          separation). [u], [boundary] and the untouched rest partition
          the domain. *)

val run :
  ?cost:Congest.Cost.t ->
  ?epsilon:float ->
  Dsgraph.Graph.t ->
  domain:Dsgraph.Mask.t ->
  outcome
(** [run g ~domain] on a {e connected} [G\[domain\]] ([ε] defaults to
    [1/2]). Cost charging: each iteration's BFS waves charge their actual
    depth; the half-split charges one BFS plus a broadcast.
    @raise Invalid_argument if the domain is empty or disconnected. *)

val ratio_bound : n:int -> epsilon:float -> float
(** The per-layer growth threshold [1 + δ] with [δ = ε / ln n] used by
    the weak-layer search; exposed for tests and for the barrier
    experiment. *)

val window : n:int -> epsilon:float -> int
(** The search-window length [K = O(log n / ε)]: scanning [K] consecutive
    layers starting at a set of size [>= n/3] must find a layer with
    growth ratio below {!ratio_bound}. *)
