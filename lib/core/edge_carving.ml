open Dsgraph

type result = {
  clustering : Cluster.Clustering.t;
  cut_edges : (int * int) list;
  max_radius : int;
}

let carve ?cost ?domain g ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Edge_carving.carve: epsilon must be in (0, 1)";
  let n = Graph.n g in
  let domain = match domain with Some d -> d | None -> Mask.full n in
  let remaining = Mask.copy domain in
  let cluster_of = Array.make n (-1) in
  let cut = ref [] in
  let next_cluster = ref 0 in
  let max_radius = ref 0 in
  let charge rounds =
    match cost with
    | None -> ()
    | Some c ->
        Congest.Cost.charge c ~rounds ~messages:(Mask.count remaining)
          ~max_bits:(2 * Congest.Bits.id_bits ~n) "edge_carving.grow"
  in
  while Mask.count remaining > 0 do
    let center = List.hd (Mask.to_list remaining) in
    let dist = Bfs.distances ~mask:remaining g ~source:center in
    (* inside.(r) = edges with both endpoints within distance r;
       boundary.(r) = edges from distance <= r to distance r+1 *)
    let maxd = Array.fold_left max 0 dist in
    let inside = Array.make (maxd + 2) 0 in
    let boundary = Array.make (maxd + 2) 0 in
    Graph.iter_edges g (fun u v ->
        if dist.(u) >= 0 && dist.(v) >= 0 then begin
          let lo = min dist.(u) dist.(v) and hi = max dist.(u) dist.(v) in
          if hi = lo then inside.(lo) <- inside.(lo) + 1
          else begin
            (* hi = lo + 1 *)
            inside.(hi) <- inside.(hi) + 1;
            boundary.(lo) <- boundary.(lo) + 1
          end
        end);
    for r = 1 to maxd + 1 do
      inside.(r) <- inside.(r) + inside.(r - 1)
    done;
    let rec find r =
      if r > maxd then maxd
      else if
        float_of_int boundary.(r) <= epsilon *. float_of_int (inside.(r) + 1)
      then r
      else find (r + 1)
    in
    let r = find 0 in
    if r > !max_radius then max_radius := r;
    charge (r + 2);
    let id = !next_cluster in
    incr next_cluster;
    for v = 0 to n - 1 do
      if dist.(v) >= 0 && dist.(v) <= r then begin
        cluster_of.(v) <- id;
        Mask.remove remaining v
      end
    done;
    (* cut the boundary edges of the carved ball *)
    Graph.iter_edges g (fun u v ->
        if
          (dist.(u) >= 0 && dist.(v) >= 0)
          && min dist.(u) dist.(v) = r
          && max dist.(u) dist.(v) = r + 1
        then cut := (u, v) :: !cut)
  done;
  {
    clustering = Cluster.Clustering.make g ~cluster_of;
    cut_edges = !cut;
    max_radius = !max_radius;
  }

let check result ~epsilon g =
  let ( let* ) r f = Result.bind r f in
  let clustering = result.clustering in
  let cut_set = Hashtbl.create (List.length result.cut_edges) in
  List.iter
    (fun (u, v) -> Hashtbl.replace cut_set (min u v, max u v) ())
    result.cut_edges;
  let* () =
    let bad = ref None in
    Graph.iter_edges g (fun u v ->
        let cu = Cluster.Clustering.cluster_of clustering u
        and cv = Cluster.Clustering.cluster_of clustering v in
        if cu >= 0 && cv >= 0 && cu <> cv && not (Hashtbl.mem cut_set (u, v))
        then bad := Some (u, v));
    match !bad with
    | None -> Ok ()
    | Some (u, v) ->
        Error (Printf.sprintf "edge_carving: surviving cross edge (%d,%d)" u v)
  in
  let* () =
    let m = Graph.m g in
    let k = Cluster.Clustering.num_clusters clustering in
    let allowed = epsilon *. float_of_int (m + k) in
    if float_of_int (List.length result.cut_edges) <= allowed +. 1e-9 then Ok ()
    else
      Error
        (Printf.sprintf "edge_carving: %d cut edges > allowance %.1f"
           (List.length result.cut_edges) allowed)
  in
  let bound = 2 * result.max_radius in
  let rec go c =
    if c >= Cluster.Clustering.num_clusters clustering then Ok ()
    else
      match Cluster.Clustering.strong_diameter clustering c with
      | -1 -> Error (Printf.sprintf "edge_carving: cluster %d disconnected" c)
      | d when d > bound ->
          Error
            (Printf.sprintf "edge_carving: cluster %d diameter %d > %d" c d
               bound)
      | _ -> go (c + 1)
  in
  go 0
