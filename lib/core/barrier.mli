(** The Section 3 barrier construction: a graph on which the
    [O(log^2 n/ε)] diameter bound of Lemma 3.1 is tight.

    Take a constant-degree expander [G_1] on [n' = O(ε n / log n)] nodes
    and subdivide every edge into a path of length [~ log n / ε]. The
    resulting graph [G_2] has conductance [Θ(ε/log n)] — so it has no
    balanced sparse cut with a small separator — and every subgraph on a
    constant fraction of the nodes must contain a long expander path, so
    its diameter is [Ω(log^2 n/ε)]. *)

val build : ?epsilon:float -> Dsgraph.Rng.t -> target_n:int -> Dsgraph.Graph.t
(** [build rng ~target_n] constructs a barrier graph with roughly
    [target_n] nodes for boundary parameter [epsilon] (default [1/2]):
    base expander size [n' = max(8, ε·n/ln n)] rounded to even, each edge
    subdivided into a path of length [round(ln n / ε)]. *)

type analysis = {
  n : int;
  outcome : [ `Cut | `Component ];  (** what Lemma 3.1 returned *)
  separator_size : int;
      (** removed-layer size (cut) or boundary size (component) *)
  separator_bound : float;  (** the [ε n / ln n] scale it is compared to *)
  u_diameter : int;  (** diameter of the returned component; -1 for cuts *)
  diameter_scale : float;  (** the [ln^2 n / ε] scale *)
}

val analyze : ?epsilon:float -> Dsgraph.Graph.t -> analysis
(** Run Lemma 3.1 on the graph and measure the outcome against the
    barrier scales. On a barrier graph, whichever branch fires must pay:
    a cut needs [Ω(ε n/log n)] removed nodes, a component has diameter
    [Ω(log^2 n/ε)]. On benign graphs (e.g. grids) the same probe returns
    much cheaper outcomes — the contrast is experiment F.BARRIER. *)
