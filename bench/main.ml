(* Benchmark harness: regenerates the paper's Table 1 and Table 2 (measured
   on the workload suite), plus the auxiliary experiments F.MSG (message
   sizes), F.BARRIER (Section 3 tightness), F.LEMMA31 and F.APPS, and a
   bechamel wall-clock timing suite (one Test.make group per table).

   Usage:  dune exec bench/main.exe            (standard sizes, ~minutes)
           dune exec bench/main.exe -- full    (adds the n=16384 sweep)
           dune exec bench/main.exe -- quick   (smoke-test sizes)
           dune exec bench/main.exe -- trace   (observability overhead only)
           dune exec bench/main.exe -- record  (append a headline snapshot
                                                to BENCH_trajectory.json) *)

open Dsgraph
module Suite = Workload.Suite
module Algorithms = Workload.Algorithms
module Measure = Workload.Measure
module Trajectory = Workload.Trajectory
module Resource = Congest.Resource

let fmt = Format.std_formatter

let section title =
  Format.fprintf fmt "@.=== %s ===@.@." title;
  Format.pp_print_flush fmt ()

let mode =
  match Array.to_list Sys.argv with
  | _ :: "full" :: _ -> `Full
  | _ :: "quick" :: _ -> `Quick
  | _ :: "faults" :: _ -> `Faults
  | _ :: "trace" :: _ -> `Trace
  | _ :: "conform" :: _ -> `Conform
  | _ :: "causal" :: _ -> `Causal
  | _ :: "chaos" :: _ -> `Chaos
  | _ :: "record" :: _ -> `Record
  | _ :: "scale" :: _ -> `Scale
  | _ :: "resource" :: _ -> `Resource
  | _ :: "analyze" :: _ -> `Analyze
  | _ :: "dashboard" :: _ -> `Dashboard
  | _ -> `Standard

(* `chaos quick` shrinks the sweep to CI-smoke size *)
let chaos_quick =
  match Array.to_list Sys.argv with
  | _ :: "chaos" :: "quick" :: _ -> true
  | _ -> false

(* `resource quick` shrinks the overhead medians to CI-smoke size *)
let resource_quick =
  match Array.to_list Sys.argv with
  | _ :: "resource" :: "quick" :: _ -> true
  | _ -> false

(* surface the simulator's incomplete-run warnings (Sim.simulate with
   on_incomplete = `Warn logs to the "congest.sim" source) *)
let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning)

let table1_sizes =
  match mode with
  | `Quick -> [ 256 ]
  | `Standard -> [ 256; 1024; 4096 ]
  | _ -> [ 256; 1024; 4096; 16384 ]

let table2_sizes = table1_sizes

(* the ABCP baseline builds G^{2d} (Θ(n²) edges on low-diameter graphs): cap
   its size so the table stays minutes, not hours *)
let abcp_cap = 1024

let seed = 42

(* ------------------------------------------------------------------ *)
(* Table 1: network decomposition                                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section
    "Table 1 -- network decomposition in CONGEST (measured colors, cluster \
     diameter, rounds)";
  Format.fprintf fmt
    "Rows marked thm2.3 / thm3.4 are THIS PAPER's algorithms; sDiam = '-' \
     means a@.cluster induces a disconnected subgraph (only legal for weak \
     rows); diameters@.are double-sweep estimates.@.@.";
  let rows = ref [] in
  List.iter
    (fun family ->
      List.iter
        (fun n ->
          List.iter
            (fun (d : Algorithms.decomposer) ->
              if d.name <> "abcp96" || n <= abcp_cap then
                rows := Measure.decomposition_row ~seed d family ~n :: !rows)
            Algorithms.decomposers)
        table1_sizes)
    Suite.core;
  let rows = List.rev !rows in
  Measure.pp_decomp_table fmt rows;
  Format.pp_print_flush fmt ();
  rows

(* ------------------------------------------------------------------ *)
(* Headline shape: Thm 2.3 vs Thm 3.4 diameters on the path family       *)
(* ------------------------------------------------------------------ *)

let headline rows =
  section
    "Headline -- diameter improvement of Thm 3.4 over Thm 2.3 (path family)";
  Format.fprintf fmt
    "The paper predicts D = O(log^3 n) for Thm 2.3 vs O(log^2 n) for Thm \
     3.4,@.i.e. the ratio should grow with log n while Thm 3.4 pays more \
     rounds.@.@.";
  Format.fprintf fmt "%8s %12s %12s %8s %14s %14s@." "n" "D(thm2.3)"
    "D(thm3.4)" "ratio" "rounds(2.3)" "rounds(3.4)";
  List.iter
    (fun n ->
      let find name =
        List.find_opt
          (fun (r : Measure.decomp_row) ->
            r.Measure.algorithm = name && r.Measure.family = "path"
            && r.Measure.n = n)
          rows
      in
      match (find "thm2.3", find "thm3.4") with
      | Some a, Some b ->
          (* both algorithms are strong, so a missing diameter would mean a
             validity failure already flagged in the table *)
          let da = Option.value a.Measure.strong_diameter ~default:(-1) in
          let db = Option.value b.Measure.strong_diameter ~default:(-1) in
          Format.fprintf fmt "%8d %12d %12d %8.2f %14d %14d@." n da db
            (float_of_int da /. float_of_int (max 1 db))
            a.Measure.rounds b.Measure.rounds
      | _ -> ())
    table1_sizes

(* ------------------------------------------------------------------ *)
(* Table 2: ball carving                                                *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2 -- ball carving in CONGEST (n sweep at eps = 1/2)";
  let rows = ref [] in
  List.iter
    (fun family ->
      List.iter
        (fun n ->
          List.iter
            (fun (c : Algorithms.carver) ->
              rows :=
                Measure.carving_row ~seed c family ~n ~epsilon:0.5 :: !rows)
            Algorithms.carvers)
        table2_sizes)
    [ Suite.path; Suite.grid ];
  let sweep_n = List.rev !rows in
  Measure.pp_carve_table fmt sweep_n;
  section "Table 2 -- ball carving, eps sweep (path, n = 1024)";
  let rows = ref [] in
  List.iter
    (fun epsilon ->
      List.iter
        (fun (c : Algorithms.carver) ->
          rows :=
            Measure.carving_row ~seed c Suite.path ~n:1024 ~epsilon :: !rows)
        Algorithms.carvers)
    [ 0.5; 0.25; 0.125 ];
  let sweep_eps = List.rev !rows in
  Measure.pp_carve_table fmt sweep_eps;
  Format.pp_print_flush fmt ();
  sweep_n @ sweep_eps

(* ------------------------------------------------------------------ *)
(* F.MSG: message sizes — the qualitative gap the paper closes           *)
(* ------------------------------------------------------------------ *)

let messages_experiment () =
  section
    "F.MSG -- maximum message size in bits (ABCP96 transformation vs this \
     paper)";
  Format.fprintf fmt
    "CONGEST bandwidth is 2*ceil(log2 n)+8 bits. The ABCP96 weak->strong@.\
     transformation gathers cluster topologies and blows past it; the \
     paper's@.transformation (thm2.2/thm2.3) stays within it by design.@.@.";
  Format.fprintf fmt "%8s %12s %14s %14s %14s@." "n" "bandwidth" "abcp96"
    "thm2.3" "ggr21(weak)";
  List.iter
    (fun n ->
      let g = Suite.erdos_renyi.Suite.build ~seed ~n in
      let bandwidth = Congest.Bits.bandwidth ~n:(Graph.n g) in
      let run f =
        let cost = Congest.Cost.create () in
        f cost g;
        Congest.Cost.max_message_bits cost
      in
      let abcp = run (fun cost g -> ignore (Baseline.Abcp.decompose ~cost g)) in
      let ours =
        run (fun cost g -> ignore (Strongdecomp.Netdecomp.strong ~cost g))
      in
      let weak =
        run (fun cost g -> ignore (Strongdecomp.Netdecomp.weak ~cost g))
      in
      Format.fprintf fmt "%8d %12d %14d %14d %14d@." n bandwidth abcp ours weak)
    (match mode with `Quick -> [ 128; 256 ] | _ -> [ 128; 256; 512; 1024 ])

(* ------------------------------------------------------------------ *)
(* F.BARRIER: Section 3 tightness                                       *)
(* ------------------------------------------------------------------ *)

let barrier_experiment () =
  section "F.BARRIER -- Lemma 3.1 on the subdivided expander vs the grid";
  Format.fprintf fmt
    "On the barrier graph either branch must be expensive: a balanced cut \
     needs a@.separator at the eps*n/ln n scale, or the returned component \
     has diameter at@.the ln^2 n/eps scale. On the grid both stay cheap.@.@.";
  Format.fprintf fmt "%-9s %7s %-10s %10s %13s %9s %11s@." "family" "n"
    "outcome" "separator" "sep_scale" "diam(U)" "diam_scale";
  let sizes =
    match mode with `Quick -> [ 512 ] | _ -> [ 512; 1024; 2048; 4096 ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun (fam : Suite.family) ->
          let g = fam.Suite.build ~seed ~n in
          let a = Strongdecomp.Barrier.analyze ~epsilon:0.5 g in
          Format.fprintf fmt "%-9s %7d %-10s %10d %13.1f %9d %11.1f@."
            fam.Suite.name (Graph.n g)
            (match a.Strongdecomp.Barrier.outcome with
            | `Cut -> "cut"
            | `Component -> "component")
            a.Strongdecomp.Barrier.separator_size
            a.Strongdecomp.Barrier.separator_bound
            a.Strongdecomp.Barrier.u_diameter
            a.Strongdecomp.Barrier.diameter_scale)
        [ Suite.subdivided_expander; Suite.grid ])
    sizes

(* ------------------------------------------------------------------ *)
(* F.LEMMA31: outcome census across the suite                           *)
(* ------------------------------------------------------------------ *)

let lemma31_experiment () =
  section "F.LEMMA31 -- Lemma 3.1 outcomes across the workload suite";
  Format.fprintf fmt "%-10s %7s %-10s %10s %9s %10s@." "family" "n" "outcome"
    "separator" "diam(U)" "rounds";
  let n = match mode with `Quick -> 256 | _ -> 1024 in
  List.iter
    (fun (fam : Suite.family) ->
      let g = fam.Suite.build ~seed ~n in
      if Components.is_connected g then begin
        let cost = Congest.Cost.create () in
        let outcome =
          Strongdecomp.Sparse_cut.run ~cost ~epsilon:0.5 g
            ~domain:(Mask.full (Graph.n g))
        in
        let kind, sep, diam =
          match outcome with
          | Strongdecomp.Sparse_cut.Cut { removed; _ } ->
              ("cut", List.length removed, -1)
          | Strongdecomp.Sparse_cut.Component { u; boundary } ->
              ("component", List.length boundary, Bfs.diameter_of_set g u)
        in
        Format.fprintf fmt "%-10s %7d %-10s %10d %9d %10d@." fam.Suite.name
          (Graph.n g) kind sep diam (Congest.Cost.rounds cost)
      end)
    Suite.all

(* ------------------------------------------------------------------ *)
(* F.APPS: the C·D use template                                          *)
(* ------------------------------------------------------------------ *)

let apps_experiment () =
  section
    "F.APPS -- MIS and (D+1)-coloring on top of Thm 2.3 decompositions, vs \
     Luby's randomized MIS (simulated)";
  Format.fprintf fmt "%-10s %7s %7s %7s %10s %10s %10s %8s@." "family" "n" "C"
    "D" "mis_rnds" "col_rnds" "luby_rnds" "valid";
  let n = match mode with `Quick -> 256 | _ -> 1024 in
  List.iter
    (fun (fam : Suite.family) ->
      let g = fam.Suite.build ~seed ~n in
      let decomp = Strongdecomp.Netdecomp.strong g in
      let clustering = Cluster.Decomposition.clustering decomp in
      let colors = Cluster.Decomposition.num_colors decomp in
      let diam = Cluster.Clustering.max_strong_diameter_estimate clustering in
      let mis_cost = Congest.Cost.create () in
      let mis = Apps.Mis.of_decomposition ~cost:mis_cost g decomp in
      let col_cost = Congest.Cost.create () in
      let coloring = Apps.Coloring.of_decomposition ~cost:col_cost g decomp in
      let luby_mis, luby_stats = Apps.Luby.run g in
      let valid =
        (match Apps.Mis.check g mis with Ok () -> true | Error _ -> false)
        && (match Apps.Coloring.check g coloring with
           | Ok () -> true
           | Error _ -> false)
        && match Apps.Mis.check g luby_mis with Ok () -> true | Error _ -> false
      in
      Format.fprintf fmt "%-10s %7d %7d %7d %10d %10d %10d %8s@." fam.Suite.name
        (Graph.n g) colors diam
        (Congest.Cost.rounds mis_cost)
        (Congest.Cost.rounds col_cost)
        luby_stats.Congest.Sim.rounds_used
        (if valid then "ok" else "FAIL"))
    (Suite.core @ [ Suite.scale_free ])

(* ------------------------------------------------------------------ *)
(* F.SIM: the genuinely distributed execution vs the cost model          *)
(* ------------------------------------------------------------------ *)

let sim_experiment () =
  section
    "F.SIM -- weak carving executed round-by-round on the synchronous \
     simulator";
  Format.fprintf fmt
    "The same bit-phase algorithm as the step-granular engine, but as a \
     real node@.program: proposals on edges, per-cluster convergecasts \
     over Steiner trees, one@.message per edge per round. 'match' asserts \
     the clustering equals the engine's@.exactly; sim_rounds is the \
     measured synchronous round count, model_rounds the@.cost-model charge \
     for the same instance.@.@.";
  Format.fprintf fmt "%-8s %5s %-6s %6s %10s %12s %8s %8s@." "family" "n"
    "preset" "match" "sim_rounds" "model_rounds" "maxbits" "bandw";
  let graphs =
    match mode with
    | `Quick -> [ ("grid", Gen.grid 5 5); ("er", Suite.erdos_renyi.Suite.build ~seed ~n:24) ]
    | _ ->
        [
          ("path", Gen.path 48);
          ("grid", Gen.grid 7 7);
          ("er", Suite.erdos_renyi.Suite.build ~seed ~n:48);
          ("cliques", Gen.ring_of_cliques 4 6);
        ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun (pname, preset) ->
          let r = Weakdiam.Distributed.carve ~preset g ~epsilon:0.5 in
          let model = Congest.Cost.create () in
          ignore (Weakdiam.Weak_carving.carve ~preset ~cost:model g ~epsilon:0.5);
          Format.fprintf fmt "%-8s %5d %-6s %6b %10d %12d %8d %8d@." name
            (Graph.n g) pname
            (Weakdiam.Distributed.matches_engine r)
            r.Weakdiam.Distributed.sim_stats.Congest.Sim.rounds_used
            (Congest.Cost.rounds model)
            r.Weakdiam.Distributed.sim_stats.Congest.Sim.max_bits_seen
            (Congest.Bits.bandwidth ~n:(Graph.n g)))
        [ ("rg20", Weakdiam.Weak_carving.Rg20); ("ggr21", Weakdiam.Weak_carving.Ggr21) ])
    graphs;
  Format.fprintf fmt
    "@.Theorem 2.1 itself as composed distributed stages (weak carving + \
     BFS ball@.growing as node programs); 'match' compares against the \
     centralized Thm 2.1:@.@.";
  Format.fprintf fmt "%-8s %5s %6s %6s %12s %12s %8s@." "family" "n" "match"
    "iters" "weak_rounds" "ball_rounds" "maxbits";
  List.iter
    (fun (name, g) ->
      let _, stats = Strongdecomp.Transform_distributed.strong_carve g ~epsilon:0.5 in
      let m = Strongdecomp.Transform_distributed.matches_centralized g ~epsilon:0.5 in
      Format.fprintf fmt "%-8s %5d %6b %6d %12d %12d %8d@." name (Graph.n g) m
        stats.Strongdecomp.Transform_distributed.iterations
        stats.Strongdecomp.Transform_distributed.weak_rounds
        stats.Strongdecomp.Transform_distributed.ball_rounds
        stats.Strongdecomp.Transform_distributed.max_bits)
    (match mode with
    | `Quick -> [ ("grid", Gen.grid 5 5) ]
    | _ ->
        [
          ("path", Gen.path 40);
          ("grid", Gen.grid 6 6);
          ("er", Suite.erdos_renyi.Suite.build ~seed ~n:40);
        ])

(* ------------------------------------------------------------------ *)
(* Shape check: measured / theory-formula ratios across the n sweep      *)
(* ------------------------------------------------------------------ *)

let shape_check rows2 =
  section
    "Shape check -- measured rounds and diameter divided by the paper's \
     formula (path family, eps = 1/2)";
  Format.fprintf fmt
    "Each cell is measured / formula with the formula from Table 2 \
     (log^k n / eps^j).@.The formulas are worst-case upper bounds, so a \
     shape-correct implementation@.shows a bounded, flat-or-decreasing \
     ratio; a ratio growing with n would flag@.an order violation. None \
     grows.@.@.";
  Format.fprintf fmt "%-10s" "algo";
  List.iter (fun n -> Format.fprintf fmt "  D/thy@%-6d" n) table2_sizes;
  List.iter (fun n -> Format.fprintf fmt "  R/thy@%-6d" n) table2_sizes;
  Format.fprintf fmt "@.";
  List.iter
    (fun (trow : Workload.Theory.row) ->
      let cells which =
        List.map
          (fun n ->
            match
              List.find_opt
                (fun (r : Measure.carve_row) ->
                  r.Measure.algorithm = trow.Workload.Theory.t_name
                  && r.Measure.family = "path"
                  && r.Measure.n = n
                  && r.Measure.epsilon = 0.5)
                rows2
            with
            | None -> None
            | Some r ->
                let measured =
                  match which with
                  | `Diameter -> (
                      match r.Measure.strong_diameter with
                      | Some d -> d
                      | None -> r.Measure.weak_diameter)
                  | `Rounds -> r.Measure.rounds
                in
                Some
                  (Workload.Theory.ratio trow which ~n ~epsilon:0.5 ~measured))
          table2_sizes
      in
      let ds = cells `Diameter and rs = cells `Rounds in
      if List.exists Option.is_some ds then begin
        Format.fprintf fmt "%-10s" trow.Workload.Theory.t_name;
        List.iter
          (fun c ->
            match c with
            | None -> Format.fprintf fmt "  %12s" "-"
            | Some v -> Format.fprintf fmt "  %12.3f" v)
          (ds @ rs);
        Format.fprintf fmt "@."
      end)
    Workload.Theory.carving_rows

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                     *)
(* ------------------------------------------------------------------ *)

let ablation_presets () =
  section
    "ABLATION A1 -- weak-engine preset inside Theorem 2.2 (RG20 guarantees \
     vs GGR21 parameters)";
  Format.fprintf fmt
    "Theorem 2.2 = Theorem 2.1 over the weak engine. The RG20 preset \
     carries the@.worst-case dead-fraction proof but deeper Steiner trees \
     (R = O(log^3/eps));@.the GGR21 preset has R = O(log^2/eps) because it \
     stops clusters more@.aggressively (note its higher dead fraction); the \
     Hybrid preset grows on@.either criterion — minimum deaths, RG20-scale \
     depth. The strong diameter@.inherits 2R + O(log n/eps).@.@.";
  Format.fprintf fmt "%-9s %7s %-8s %7s %7s %7s %12s@." "family" "n" "preset"
    "sDiam" "dead%" "steps" "rounds";
  let sizes = match mode with `Quick -> [ 1024 ] | _ -> [ 1024; 4096 ] in
  List.iter
    (fun n ->
      List.iter
        (fun (label, preset) ->
          let g = Suite.path.Suite.build ~seed ~n in
          let cost = Congest.Cost.create () in
          let carving, _ =
            Strongdecomp.Strong_carving.carve ~cost ~preset g ~epsilon:0.5
          in
          let clustering = carving.Cluster.Carving.clustering in
          Format.fprintf fmt "%-9s %7d %-8s %7d %7.1f %7s %12d@." "path" n
            label
            (Cluster.Clustering.max_strong_diameter_estimate clustering)
            (100.0 *. Cluster.Carving.dead_fraction carving)
            "-" (Congest.Cost.rounds cost))
        [
          ("rg20", Weakdiam.Weak_carving.Rg20);
          ("hybrid", Weakdiam.Weak_carving.Hybrid);
          ("ggr21", Weakdiam.Weak_carving.Ggr21);
        ])
    sizes

let ablation_epsilon_split () =
  section
    "ABLATION A2 -- Theorem 2.1's eps' = eps/(2 log n) split, probed by \
     feeding the weak engine directly at eps vs eps/(2 log n)";
  Format.fprintf fmt
    "The transformation must shrink the weak engine's boundary budget by \
     2 log n to@.survive log n halving iterations; the price is the deeper \
     trees below.@.@.";
  Format.fprintf fmt "%-9s %7s %14s %10s %10s@." "family" "n" "eps'" "depth R"
    "dead%";
  let n = match mode with `Quick -> 512 | _ -> 4096 in
  let g = Suite.path.Suite.build ~seed ~n in
  let log2n =
    int_of_float (Float.ceil (log (float_of_int n) /. log 2.0))
  in
  List.iter
    (fun (label, eps) ->
      let r = Weakdiam.Weak_carving.carve g ~epsilon:eps in
      Format.fprintf fmt "%-9s %7d %14s %10d %10.2f@." "path" n label
        r.Weakdiam.Weak_carving.max_depth
        (100.0 *. Cluster.Carving.dead_fraction r.Weakdiam.Weak_carving.carving))
    [
      ("1/2", 0.5);
      ( Printf.sprintf "1/(4 log n)=%.4f" (0.5 /. float_of_int (2 * log2n)),
        0.5 /. float_of_int (2 * log2n) );
    ]

let ablation_colors_vs_eps () =
  section
    "ABLATION A4 -- colors vs per-repetition boundary parameter in the \
     LS93 reduction";
  Format.fprintf fmt
    "The decomposition repeats the carving on what remains. In theory C ~ \
     log_{1/eps} n;@.at laptop scale the measured dead fractions are far \
     below eps, so colors barely@.move and the visible trade is the \
     1/eps factor in per-cluster diameter and rounds.@.@.";
  Format.fprintf fmt "%8s %8s %8s %8s@." "eps" "colors" "sDiam" "rounds";
  let n = match mode with `Quick -> 256 | _ -> 1024 in
  let g = Suite.path.Suite.build ~seed ~n in
  List.iter
    (fun epsilon ->
      let cost = Congest.Cost.create () in
      let carver ?cost ?domain g ~epsilon =
        fst (Strongdecomp.Strong_carving.carve ?cost ?domain g ~epsilon)
      in
      let d = Strongdecomp.Netdecomp.of_carver ~cost ~epsilon carver g in
      let clustering = Cluster.Decomposition.clustering d in
      Format.fprintf fmt "%8.3f %8d %8d %8d@." epsilon
        (Cluster.Decomposition.num_colors d)
        (Cluster.Clustering.max_strong_diameter_estimate clustering)
        (Congest.Cost.rounds cost))
    [ 0.75; 0.5; 0.25 ]

let ablation_apps_extra () =
  section
    "ABLATION A3 -- further decomposition consumers: spanner and expander \
     decomposition";
  let n = match mode with `Quick -> 256 | _ -> 1024 in
  Format.fprintf fmt "%-10s %7s %9s %9s %12s %10s@." "family" "n"
    "spn_edges" "stretch" "xdecomp_k" "cut_frac";
  List.iter
    (fun (fam : Suite.family) ->
      let g = fam.Suite.build ~seed ~n in
      let spanner, _ = Apps.Spanner.run g in
      let xd = Apps.Expander_decomp.decompose g in
      Format.fprintf fmt "%-10s %7d %9d %9.0f %12d %10.3f@." fam.Suite.name
        (Graph.n g)
        (List.length spanner.Apps.Spanner.edges)
        (Apps.Spanner.measured_stretch g spanner)
        (Cluster.Clustering.num_clusters xd.Apps.Expander_decomp.clustering)
        (Apps.Expander_decomp.inter_cluster_fraction g xd))
    [ Suite.grid; Suite.erdos_renyi; Suite.ring_of_cliques ]

(* ------------------------------------------------------------------ *)
(* F.FAULT: graceful degradation under fault injection                   *)
(* ------------------------------------------------------------------ *)

let faults_experiment () =
  section
    "F.FAULT -- distributed carvings through the reliable transport under \
     drop/crash adversaries";
  Format.fprintf fmt
    "Each row is one seeded, replayable fault schedule. 'ok' means the \
     output passes@.the lib/cluster validity checkers on the surviving \
     subgraph; '(recovered)' means@.the first run was corrupted by crashes \
     and the harness re-ran on the survivor@.subgraph (recovery rounds \
     reported). Overhead is outer rounds vs the fault-free@.unwrapped \
     baseline.@.@.";
  let sweeps =
    match mode with
    | `Quick ->
        [
          (Workload.Faults.Ls, "path", 64, 0.5);
          (Workload.Faults.Weakdiam, "grid", 25, 0.5);
        ]
    | _ ->
        [
          (Workload.Faults.Ls, "path", 128, 0.5);
          (Workload.Faults.Ls, "er", 128, 0.5);
          (Workload.Faults.Ls, "reg4", 256, 0.5);
          (Workload.Faults.Weakdiam, "grid", 49, 0.5);
          (Workload.Faults.Weakdiam, "er", 48, 0.5);
          (Workload.Faults.Weakdiam, "path", 64, 0.5);
        ]
  in
  let rows =
    List.concat_map
      (fun (algorithm, family, n, epsilon) ->
        let rows =
          Workload.Faults.sweep ~seed:1 algorithm ~family ~n ~epsilon
        in
        List.iter
          (fun r -> Format.fprintf fmt "%a@." Workload.Faults.pp_row r)
          rows;
        rows)
      sweeps
  in
  Format.pp_print_flush fmt ();
  rows

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock suite: one Test.make per table/figure             *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "Wall-clock timing (bechamel, monotonic clock, ~0.5 s per test)";
  let open Bechamel in
  let open Toolkit in
  let n = match mode with `Quick -> 256 | _ -> 1024 in
  let path = Suite.path.Suite.build ~seed ~n in
  let grid = Suite.grid.Suite.build ~seed ~n in
  let er = Suite.erdos_renyi.Suite.build ~seed ~n in
  let test_table1 =
    Test.make_grouped ~name:"table1" ~fmt:"%s %s"
      [
        Test.make ~name:"thm2.3/path"
          (Staged.stage (fun () -> Strongdecomp.Netdecomp.strong path));
        Test.make ~name:"thm3.4/path"
          (Staged.stage (fun () -> Strongdecomp.Netdecomp.strong_improved path));
        Test.make ~name:"ls93/path"
          (Staged.stage (fun () ->
               Baseline.Linial_saks.decompose (Rng.create 1) path));
        Test.make ~name:"mpx/path"
          (Staged.stage (fun () -> Baseline.Mpx.decompose (Rng.create 1) path));
      ]
  in
  let test_table2 =
    Test.make_grouped ~name:"table2" ~fmt:"%s %s"
      [
        Test.make ~name:"thm2.2/grid"
          (Staged.stage (fun () ->
               Strongdecomp.Strong_carving.carve grid ~epsilon:0.5));
        Test.make ~name:"thm3.3/grid"
          (Staged.stage (fun () ->
               Strongdecomp.Strong_carving.carve_improved grid ~epsilon:0.5));
        Test.make ~name:"ggr21/grid"
          (Staged.stage (fun () -> Weakdiam.Weak_carving.carve grid ~epsilon:0.5));
        Test.make ~name:"rg20/grid"
          (Staged.stage (fun () ->
               Weakdiam.Weak_carving.carve ~preset:Weakdiam.Weak_carving.Rg20
                 grid ~epsilon:0.5));
      ]
  in
  let test_figures =
    Test.make_grouped ~name:"figures" ~fmt:"%s %s"
      [
        Test.make ~name:"lemma3.1/grid"
          (Staged.stage (fun () ->
               Strongdecomp.Sparse_cut.run ~epsilon:0.5 grid
                 ~domain:(Mask.full (Graph.n grid))));
        Test.make ~name:"mis/er" (Staged.stage (fun () -> Apps.Mis.run er));
        Test.make ~name:"edge_carving/grid"
          (Staged.stage (fun () ->
               Strongdecomp.Edge_carving.carve grid ~epsilon:0.25));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Format.fprintf fmt "%-26s %14s@." "benchmark" "time/run";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
      List.iter
        (fun name ->
          let est = Hashtbl.find results name in
          let value =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> Float.nan
          in
          let pretty =
            if value > 1e9 then Printf.sprintf "%.2f s" (value /. 1e9)
            else if value > 1e6 then Printf.sprintf "%.2f ms" (value /. 1e6)
            else Printf.sprintf "%.0f ns" value
          in
          Format.fprintf fmt "%-26s %14s@." name pretty)
        (List.sort compare names))
    [ test_table1; test_table2; test_figures ]

(* ------------------------------------------------------------------ *)
(* T.TRACE: observability overhead                                      *)
(* ------------------------------------------------------------------ *)

(* median wall-clock of [reps] runs of [f] *)
let median_seconds ~reps f =
  let samples =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (reps / 2)

let trace_experiment () =
  section
    "T.TRACE -- wall-clock overhead of the per-round event sink on \
     simulator-heavy workloads";
  Format.fprintf fmt
    "Each workload runs with no sink (off), with a sink attached (on), \
     then with no@.sink again (off2, the noise floor). The observability \
     contract is: 'off' pays@.nothing — the hot path only tests an option \
     — and 'on' stays within a few@.percent. overhead%% = (on - off) / \
     off; compare it against the floor.@.@.";
  let reps = match mode with `Quick -> 3 | _ -> 9 in
  let er = Suite.erdos_renyi.Suite.build ~seed ~n:96 in
  let grid = Gen.grid 8 8 in
  (* iters batches sub-millisecond workloads so one sample rises above
     timer noise; each traced iteration gets a fresh sink *)
  let workloads =
    [
      ( "leader_election/er96",
        200,
        fun trace -> ignore (Congest.Programs.leader_election ?trace er) );
      ( "bfs/er96",
        200,
        fun trace -> ignore (Congest.Programs.bfs ?trace er ~source:0) );
      ( "weak_carve_sim/grid64",
        2,
        fun trace ->
          ignore (Weakdiam.Distributed.carve ?trace grid ~epsilon:0.5) );
    ]
  in
  Format.fprintf fmt "%-24s %5s %10s %10s %10s %10s %10s@." "workload" "reps"
    "off(s)" "on(s)" "off2(s)" "overhead%" "floor%";
  let rows =
    List.map
      (fun (name, iters, exec) ->
        let sink = Congest.Trace.sink () in
        let batch trace () =
          for _ = 1 to iters do
            if trace then begin
              Congest.Trace.clear sink;
              exec (Some sink)
            end
            else exec None
          done
        in
        (* warm-up, excluded from the samples *)
        batch false ();
        let off = median_seconds ~reps (batch false) in
        let on = median_seconds ~reps (batch true) in
        let off2 = median_seconds ~reps (batch false) in
        let pct a b = 100.0 *. (a -. b) /. Float.max b 1e-9 in
        let overhead = pct on off and floor = pct off2 off in
        Format.fprintf fmt "%-24s %5d %10.4f %10.4f %10.4f %10.2f %10.2f@."
          name reps off on off2 overhead floor;
        (name, reps, off, on, off2, overhead, floor))
      workloads
  in
  Format.pp_print_flush fmt ();
  rows

(* T.SPAN: the tentpole acceptance number — spans must cost a few percent
   at most over tracing alone, since every enter/exit only pushes one
   packed event and touches two float cells *)
let span_overhead_experiment () =
  section
    "T.SPAN -- wall-clock overhead of phase spans over tracing alone";
  Format.fprintf fmt
    "Both columns attach a sink; 'trace' disables spans (~spans:false), \
     'spans' is the@.default sink with the full phase hierarchy recorded. \
     trace2 re-runs the@.tracing-only batch as the noise floor. The budget \
     is overhead%% <= 5.@.@.";
  let reps = match mode with `Quick -> 3 | _ -> 15 in
  let grid = Gen.grid 8 8 in
  let workloads =
    [
      ( "weak_carve_sim/grid64",
        2,
        fun sink ->
          ignore (Weakdiam.Distributed.carve ~trace:sink grid ~epsilon:0.5) );
      ( "thm2.3/grid64",
        2,
        fun sink ->
          let cost = Congest.Cost.create ~trace:sink () in
          ignore (Strongdecomp.Netdecomp.strong ~cost grid) );
    ]
  in
  Format.fprintf fmt "%-24s %5s %10s %10s %10s %10s %10s@." "workload" "reps"
    "trace(s)" "spans(s)" "trace2(s)" "overhead%" "floor%";
  let rows =
    List.map
      (fun (name, iters, exec) ->
        let plain = Congest.Trace.sink ~spans:false () in
        let spanned = Congest.Trace.sink () in
        let batch sink () =
          for _ = 1 to iters do
            Congest.Trace.clear sink;
            exec sink
          done
        in
        (* warm both variants so neither pays cold caches *)
        batch spanned ();
        batch plain ();
        let off = median_seconds ~reps (batch plain) in
        let on = median_seconds ~reps (batch spanned) in
        let off2 = median_seconds ~reps (batch plain) in
        let pct a b = 100.0 *. (a -. b) /. Float.max b 1e-9 in
        let overhead = pct on off and floor = pct off2 off in
        Format.fprintf fmt "%-24s %5d %10.4f %10.4f %10.4f %10.2f %10.2f@."
          name reps off on off2 overhead floor;
        (name, reps, off, on, off2, overhead, floor))
      workloads
  in
  Format.pp_print_flush fmt ();
  rows

(* M.RES: wall-clock overhead of the resource recorder over spans alone.
   Every span enter/exit additionally reads the clock plus the GC
   counters and charges one delta — the budget is overhead% <= 5 on the
   span-dense simulator workload, and CI gates on it (resource mode). *)
let resource_overhead_experiment () =
  section
    "M.RES -- wall-clock overhead of the resource recorder over spans alone";
  Format.fprintf fmt
    "Both columns attach a default (spans-enabled) sink; 'resources' \
     additionally@.attaches a fresh Congest.Resource recorder per \
     iteration, so every span@.transition samples the clock and the GC \
     counters. spans2 re-runs the@.spans-only batch as the noise floor. \
     The budget is overhead%% <= 5.@.@.";
  let reps = if resource_quick then 5 else 15 in
  let grid = Gen.grid 8 8 in
  let grid16 = Gen.grid 16 16 in
  let workloads =
    [
      ( "weak_carve_sim/grid64",
        2,
        fun sink ->
          ignore (Weakdiam.Distributed.carve ~trace:sink grid ~epsilon:0.5) );
      (* the strong engine is span-dense but fast: run it on grid256 so
         the batch is long enough for the median to mean something *)
      ( "thm2.3/grid256",
        2,
        fun sink ->
          let cost = Congest.Cost.create ~trace:sink () in
          ignore (Strongdecomp.Netdecomp.strong ~cost grid16) );
    ]
  in
  Format.fprintf fmt "%-24s %5s %10s %10s %10s %10s %10s@." "workload" "reps"
    "spans(s)" "resources" "spans2(s)" "overhead%" "floor%";
  let rows =
    List.map
      (fun (name, iters, exec) ->
        let sink = Congest.Trace.sink () in
        (* Trace.clear resets the hooks, so the spans-only batches run
           with no recorder attached even after a resourced batch *)
        let batch resourced () =
          for _ = 1 to iters do
            Congest.Trace.clear sink;
            if resourced then Resource.attach (Resource.create ()) sink;
            exec sink
          done
        in
        batch true ();
        batch false ();
        (* settle the heap between batches so one column does not pay
           the major collections of the previous column's garbage *)
        let settle () = Gc.full_major () in
        settle ();
        let off = median_seconds ~reps (batch false) in
        settle ();
        let on = median_seconds ~reps (batch true) in
        settle ();
        let off2 = median_seconds ~reps (batch false) in
        let pct a b = 100.0 *. (a -. b) /. Float.max b 1e-9 in
        let overhead = pct on off and floor = pct off2 off in
        Format.fprintf fmt "%-24s %5d %10.4f %10.4f %10.4f %10.2f %10.2f@."
          name reps off on off2 overhead floor;
        (name, reps, off, on, off2, overhead, floor))
      workloads
  in
  Format.pp_print_flush fmt ();
  rows

let run_resource_only () =
  let t0 = Unix.gettimeofday () in
  let rows = resource_overhead_experiment () in
  (try
     let dir = "bench_results" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let oc = open_out (Filename.concat dir "resource_overhead.csv") in
     output_string oc
       "workload,reps,spans_seconds,resources_seconds,spans2_seconds,overhead_pct,floor_pct\n";
     List.iter
       (fun (name, reps, off, on, off2, overhead, floor) ->
         output_string oc
           (Printf.sprintf "%s,%d,%.6f,%.6f,%.6f,%.3f,%.3f\n" name reps off
              on off2 overhead floor))
       rows;
     close_out oc;
     Format.fprintf fmt
       "@.CSV dump written to bench_results/resource_overhead.csv@."
   with Sys_error e -> Format.fprintf fmt "@.(skipping CSV dump: %s)@." e);
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)

(* C.CONF: wall-clock cost of the model-invariant verifier's per-round
   instrumentation over a plain traced run. The always-on checks (edge
   discipline + halt monotonicity) must stay within the ~10% budget;
   order-invariant workloads additionally re-run every multi-message
   round on the reversed inbox, which deliberately doubles round work,
   so they are labeled and judged separately. *)
let conform_overhead_experiment () =
  section
    "C.CONF -- wall-clock overhead of conformance instrumentation over \
     tracing alone";
  Format.fprintf fmt
    "Both columns attach a sink; 'verified' additionally wraps the \
     program in@.Congest.Conformance.instrument. traced2 re-runs the \
     tracing-only batch as the@.noise floor. Budget: overhead%% <= 10 for \
     the (c)-(d) checks; rows marked OI@.also pay the inbox-reversal \
     re-run of invariant (e).@.@.";
  let reps = match mode with `Quick -> 3 | _ -> 9 in
  let er = Suite.erdos_renyi.Suite.build ~seed ~n:96 in
  let grid = Gen.grid 8 8 in
  let workloads =
    [
      ( "leader_election/er96 OI",
        200,
        Some true,
        fun conformance trace ->
          ignore (Congest.Programs.leader_election ?conformance ?trace er) );
      ( "bfs/er96",
        200,
        Some false,
        fun conformance trace ->
          ignore (Congest.Programs.bfs ?conformance ?trace er ~source:0) );
      ( "weak_carve_sim/grid64",
        2,
        Some false,
        fun conformance trace ->
          ignore (Weakdiam.Distributed.carve ?conformance ?trace grid ~epsilon:0.5)
      );
    ]
  in
  Format.fprintf fmt "%-24s %5s %10s %10s %10s %10s %10s@." "workload" "reps"
    "traced(s)" "verified" "traced2(s)" "overhead%" "floor%";
  let rows =
    List.map
      (fun (name, iters, order_invariant, exec) ->
        let sink = Congest.Trace.sink () in
        let rec_ = Congest.Conformance.recorder () in
        let g = if name = "weak_carve_sim/grid64" then grid else er in
        let inst =
          Congest.Conformance.instrumentor ?order_invariant rec_ g
        in
        let batch verified () =
          for _ = 1 to iters do
            Congest.Trace.clear sink;
            Congest.Conformance.clear rec_;
            exec (if verified then Some inst else None) (Some sink)
          done
        in
        batch true ();
        batch false ();
        let off = median_seconds ~reps (batch false) in
        let on = median_seconds ~reps (batch true) in
        let off2 = median_seconds ~reps (batch false) in
        let pct a b = 100.0 *. (a -. b) /. Float.max b 1e-9 in
        let overhead = pct on off and floor = pct off2 off in
        Format.fprintf fmt "%-24s %5d %10.4f %10.4f %10.4f %10.2f %10.2f@."
          name reps off on off2 overhead floor;
        (name, reps, off, on, off2, overhead, floor))
      workloads
  in
  Format.pp_print_flush fmt ();
  rows

(* sample artifacts so a bench run leaves an inspectable event stream *)
let trace_artifacts () =
  let grid = Gen.grid 8 8 in
  let sink = Congest.Trace.sink () in
  ignore (Weakdiam.Distributed.carve ~trace:sink grid ~epsilon:0.5);
  let jsonl =
    Congest.Trace.save ~file:"trace_weak_carve_grid64.jsonl" sink
  in
  let metrics = Congest.Metrics.of_trace sink in
  let files =
    Congest.Metrics.save ~prefix:"trace_weak_carve_grid64" metrics
  in
  Format.fprintf fmt "@.sample event stream -> %s (%d events)@." jsonl
    (Congest.Trace.length sink);
  List.iter (Format.fprintf fmt "sample metrics -> %s@.") files

let run_trace_only () =
  let t0 = Unix.gettimeofday () in
  let rows = trace_experiment () in
  let span_rows = span_overhead_experiment () in
  (try
     let dir = "bench_results" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let dump file header rows =
       let oc = open_out (Filename.concat dir file) in
       output_string oc header;
       List.iter
         (fun (name, reps, off, on, off2, overhead, floor) ->
           output_string oc
             (Printf.sprintf "%s,%d,%.6f,%.6f,%.6f,%.3f,%.3f\n" name reps off
                on off2 overhead floor))
         rows;
       close_out oc
     in
     dump "trace_overhead.csv"
       "workload,reps,off_seconds,on_seconds,off2_seconds,overhead_pct,floor_pct\n"
       rows;
     dump "span_overhead.csv"
       "workload,reps,trace_seconds,spans_seconds,trace2_seconds,overhead_pct,floor_pct\n"
       span_rows;
     trace_artifacts ();
     Format.fprintf fmt
       "@.CSV dumps written to bench_results/{trace,span}_overhead.csv@."
   with Sys_error e -> Format.fprintf fmt "@.(skipping CSV dump: %s)@." e);
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)

let run_conform_only () =
  let t0 = Unix.gettimeofday () in
  let rows = conform_overhead_experiment () in
  (try
     let dir = "bench_results" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let oc = open_out (Filename.concat dir "conform_overhead.csv") in
     output_string oc
       "workload,reps,traced_seconds,verified_seconds,traced2_seconds,overhead_pct,floor_pct\n";
     List.iter
       (fun (name, reps, off, on, off2, overhead, floor) ->
         output_string oc
           (Printf.sprintf "%s,%d,%.6f,%.6f,%.6f,%.3f,%.3f\n" name reps off
              on off2 overhead floor))
       rows;
     close_out oc;
     Format.fprintf fmt
       "@.CSV dump written to bench_results/conform_overhead.csv@."
   with Sys_error e -> Format.fprintf fmt "@.(skipping CSV dump: %s)@." e);
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)

(* A.CAUSAL: replay cost of the happens-before analyzer, relative to the
   traced run that produced the event stream. Analysis is a pure
   consumer (two Trace.iter passes plus the span replay), so the budget
   is a fraction of the run itself: analyze <= 10% of run. *)
let causal_experiment () =
  section
    "A.CAUSAL -- replay cost of the causal critical-path analyzer over \
     the traced run";
  Format.fprintf fmt
    "'run' executes the workload with a sink attached; 'analyze' replays \
     the recorded@.stream (Causal.analyze + span_breakdown) without \
     re-running anything. Budget:@.overhead%% = analyze / run <= 10.@.@.";
  let reps = match mode with `Quick -> 3 | _ -> 9 in
  let grid = Gen.grid 8 8 in
  let grid256 = Gen.grid 16 16 in
  let workloads =
    [
      ( "weak_carve_sim/grid64",
        2,
        fun sink ->
          ignore (Weakdiam.Distributed.carve ~trace:sink grid ~epsilon:0.5) );
      ( "thm2.3/grid256",
        2,
        fun sink ->
          let cost = Congest.Cost.create ~trace:sink () in
          ignore (Strongdecomp.Netdecomp.strong ~cost grid256) );
    ]
  in
  Format.fprintf fmt "%-24s %5s %10s %10s %10s %16s@." "workload" "reps"
    "run(s)" "analyze(s)" "overhead%" "critical/rounds";
  let rows =
    List.map
      (fun (name, iters, exec) ->
        let sink = Congest.Trace.sink () in
        let run_batch () =
          for _ = 1 to iters do
            Congest.Trace.clear sink;
            exec sink
          done
        in
        let analyze_batch () =
          for _ = 1 to iters do
            let t = Congest.Causal.analyze sink in
            ignore (Congest.Causal.span_breakdown sink t)
          done
        in
        (* warm-up also leaves the sink holding one full run's stream
           for the analyze batches to replay *)
        run_batch ();
        analyze_batch ();
        let run_s = median_seconds ~reps run_batch in
        let analyze_s = median_seconds ~reps analyze_batch in
        let overhead = 100.0 *. analyze_s /. Float.max run_s 1e-9 in
        let t = Congest.Causal.analyze sink in
        Format.fprintf fmt "%-24s %5d %10.4f %10.4f %10.2f %16s@." name reps
          run_s analyze_s overhead
          (Printf.sprintf "%d/%d%s" t.Congest.Causal.critical_rounds
             t.Congest.Causal.rounds
             (if t.Congest.Causal.exact then "" else " ~"));
        ( name,
          reps,
          run_s,
          analyze_s,
          overhead,
          t.Congest.Causal.critical_rounds,
          t.Congest.Causal.rounds ))
      workloads
  in
  Format.pp_print_flush fmt ();
  rows

let run_causal_only () =
  let t0 = Unix.gettimeofday () in
  let rows = causal_experiment () in
  (try
     let dir = "bench_results" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let oc = open_out (Filename.concat dir "causal_overhead.csv") in
     output_string oc
       "workload,reps,run_seconds,analyze_seconds,overhead_pct,critical_rounds,rounds\n";
     List.iter
       (fun (name, reps, run_s, analyze_s, overhead, critical, rounds) ->
         output_string oc
           (Printf.sprintf "%s,%d,%.6f,%.6f,%.3f,%d,%d\n" name reps run_s
              analyze_s overhead critical rounds))
       rows;
     close_out oc;
     Format.fprintf fmt
       "@.CSV dump written to bench_results/causal_overhead.csv@."
   with Sys_error e -> Format.fprintf fmt "@.(skipping CSV dump: %s)@." e);
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* B.CHAOS: seeded chaos sweep + repair-cost headline                    *)
(* ------------------------------------------------------------------ *)

module Chaos = Workload.Chaos
module Repair = Workload.Repair
module Audit = Workload.Audit

(* The R.REPAIR acceptance row: greedy on grid256, crash node 128 with
   halo 1, verify the repair certificate, then time a from-scratch
   re-run of the same engine on the survivor subgraph (including
   certification) as the cost denominator. Returns the repair report,
   the edge count of the region handed to the re-carver, and the
   scratch seconds. *)
let repair_trial ~trial =
  let fam = Suite.find "grid" in
  let g = fam.Suite.build ~seed ~n:256 in
  let dec = Algorithms.find_decomposer "greedy" in
  let d = dec.Algorithms.run ~cost:(Congest.Cost.create ()) ~seed g in
  let session = Repair.start_decomposition d in
  let region_edges = ref 0 in
  let recarve sub =
    region_edges := Graph.m sub;
    Repair.recarve_decomposer dec ~seed:(seed + trial) sub
  in
  let delta = Cluster.Repair.delta ~crash:[ 128 ] () in
  let s', rep = Repair.repair ~halo:1 ~recarve session delta in
  let post = Cluster.Repair.graph s'.Repair.state in
  (match Repair.verify_cert ~prev:session ~post rep.Repair.cert with
  | Ok () -> ()
  | Error e -> failwith ("repair headline certificate rejected: " ^ e));
  let t0 = Unix.gettimeofday () in
  let survivors = Mask.to_list (Cluster.Repair.survivors s'.Repair.state) in
  let sub, _back = Subgraph.induce post survivors in
  let labels, lcolors =
    Repair.recarve_decomposer dec ~seed:(seed + trial) sub
  in
  let cl = Cluster.Clustering.make sub ~cluster_of:labels in
  let k = Cluster.Clustering.num_clusters cl in
  let color_of_cluster =
    Array.init k (fun c ->
        match Cluster.Clustering.members cl c with
        | [] -> 0
        | v :: _ -> max 0 lcolors.(labels.(v)))
  in
  let audit =
    Audit.certify_decomposition
      (Cluster.Decomposition.make cl ~color_of_cluster)
  in
  (match Audit.verify sub audit with
  | Ok () -> ()
  | Error e -> failwith ("repair headline scratch audit rejected: " ^ e));
  let scratch_seconds = Unix.gettimeofday () -. t0 in
  (rep, !region_edges, scratch_seconds)

let median3 a b c =
  match List.sort compare [ a; b; c ] with
  | [ _; m; _ ] -> m
  | _ -> assert false

let run_chaos_only () =
  let t0 = Unix.gettimeofday () in
  let count = if chaos_quick then 25 else 200 in
  section
    (Printf.sprintf
       "B.CHAOS -- %d seeded fault schedules through detect -> repair -> \
        re-audit"
       count);
  let specs = Chaos.default_specs ~count ~seed () in
  let results = Chaos.sweep specs in
  let rows = List.concat_map (fun r -> r.Chaos.rows) results in
  let failures =
    List.concat
      (List.map2
         (fun sp r ->
           List.map
             (fun (step, msg) ->
               Printf.sprintf "%s/%s%d seed=%d step %d: %s"
                 (Chaos.algo_label sp.Chaos.algo)
                 sp.Chaos.family sp.Chaos.n sp.Chaos.seed step msg)
             r.Chaos.failures)
         specs results)
  in
  (* per-algorithm roll-up *)
  let labels =
    List.sort_uniq compare
      (List.map (fun sp -> Chaos.algo_label sp.Chaos.algo) specs)
  in
  Format.fprintf fmt "%-14s %9s %6s %10s %10s %10s@." "algorithm"
    "schedules" "steps" "mean_touch" "max_touch" "cost_ratio";
  List.iter
    (fun label ->
      let mine =
        List.filter
          (fun row -> Chaos.algo_label row.Chaos.r_spec.Chaos.algo = label)
          rows
      in
      let steps = List.length mine in
      let schedules =
        List.length
          (List.filter
             (fun sp -> Chaos.algo_label sp.Chaos.algo = label)
             specs)
      in
      let touch = List.map (fun r -> r.Chaos.touched_fraction) mine in
      let mean xs =
        if xs = [] then 0.0
        else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
      in
      let ratio =
        mean
          (List.map
             (fun r ->
               r.Chaos.repair_seconds /. Float.max 1e-9 r.Chaos.scratch_seconds)
             mine)
      in
      Format.fprintf fmt "%-14s %9d %6d %10.3f %10.3f %10.3f@." label
        schedules steps (mean touch)
        (List.fold_left Float.max 0.0 touch)
        ratio)
    labels;
  Format.fprintf fmt "@.%d schedules, %d repair steps, %d invariant \
                      violations@."
    (List.length specs) (List.length rows) (List.length failures);
  List.iter (fun msg -> Format.fprintf fmt "  VIOLATION %s@." msg) failures;
  (* grid256 single-crash headline, median of three trials *)
  section
    "B.REPAIR -- grid256/greedy single-crash headline (median of 3 trials)";
  let trials = List.map (fun t -> (t, repair_trial ~trial:t)) [ 1; 2; 3 ] in
  let med f = match trials with
    | [ (_, a); (_, b); (_, c) ] -> median3 (f a) (f b) (f c)
    | _ -> assert false
  in
  let med_repair = med (fun (rep, _, _) -> rep.Repair.seconds) in
  let med_scratch = med (fun (_, _, s) -> s) in
  let med_touched = med (fun (rep, _, _) -> rep.Repair.touched_fraction) in
  let ratio = med_repair /. Float.max 1e-9 med_scratch in
  Format.fprintf fmt
    "touched fraction %.4f (bound 0.25), repair %.2f ms vs scratch %.2f ms \
     (ratio %.3f, bound 0.50)@."
    med_touched (1000.0 *. med_repair) (1000.0 *. med_scratch) ratio;
  let headline_ok = med_touched <= 0.25 && ratio <= 0.50 in
  Format.fprintf fmt "headline: %s@."
    (if headline_ok then "PASS" else "FAIL");
  (try
     let dir = "bench_results" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let write name contents =
       let oc = open_out (Filename.concat dir name) in
       output_string oc contents;
       close_out oc
     in
     write "chaos.csv" (Chaos.csv rows);
     let buf = Buffer.create 512 in
     Buffer.add_string buf
       "workload,trial,dirty,carried,fresh,touched,touched_fraction,region_edges,repair_seconds,scratch_seconds,cost_ratio\n";
     List.iter
       (fun (t, (rep, edges, scratch_s)) ->
         Buffer.add_string buf
           (Printf.sprintf "repair/greedy_grid256,%d,%d,%d,%d,%d,%.4f,%d,%.6f,%.6f,%.3f\n"
              t rep.Repair.dirty_clusters rep.Repair.carried_clusters
              rep.Repair.fresh_clusters rep.Repair.touched_nodes
              rep.Repair.touched_fraction edges rep.Repair.seconds scratch_s
              (rep.Repair.seconds /. Float.max 1e-9 scratch_s)))
       trials;
     Buffer.add_string buf
       (Printf.sprintf "repair/greedy_grid256,median,,,,,%.4f,,%.6f,%.6f,%.3f\n"
          med_touched med_repair med_scratch ratio);
     write "repair_cost.csv" (Buffer.contents buf);
     Format.fprintf fmt
       "@.CSV dumps written to %s/chaos.csv and %s/repair_cost.csv@." dir dir
   with Sys_error e -> Format.fprintf fmt "@.(skipping CSV dump: %s)@." e);
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0);
  if failures <> [] || not headline_ok then exit 1

(* ------------------------------------------------------------------ *)
(* B.RECORD: persistent headline-metrics time series                     *)
(* ------------------------------------------------------------------ *)

let trajectory_path = "BENCH_trajectory.json"

(* malformed trajectory lines are skipped with a warning, never
   silently dropped — and never fatal, so one corrupt line cannot
   wedge the recorder *)
let read_trajectory () =
  Trajectory.read_snapshot_lines
    ~warn:(fun ~line_number line ->
      Format.fprintf fmt "warning: %s line %d: malformed snapshot line \
                          skipped (%s)@."
        trajectory_path line_number
        (if String.length line > 40 then String.sub line 0 40 ^ "..." else line))
    trajectory_path

(* one snapshot workload: logical costs from the trace, resource columns
   (seconds, per-node allocation, peak heap) from a recorder attached to
   each run's sink. The seconds headline is the median of a
   Workload.Stats multi-sample run, with the MAD stored alongside so
   the comparator can tell noise from regression. *)
let record_entries () =
  let decomp name n =
    let d = Algorithms.find_decomposer name in
    let sink = Congest.Trace.sink () in
    let res = Resource.create () in
    Resource.attach res sink;
    (* the sink (and its recorder) only see the last sample, so the
       logical and resource columns still describe a single run *)
    let row, summary =
      Measure.decomposition_row_sampled ~seed ~trace:sink
        ~plan:Workload.Stats.quick_plan d Suite.grid ~n
    in
    let tot = Resource.totals res in
    {
      Trajectory.name = Printf.sprintf "%s/grid%d" name n;
      rounds = row.Measure.rounds;
      messages = row.Measure.messages;
      max_bits = row.Measure.max_message_bits;
      phases = List.length (Congest.Span.rollups sink);
      seconds = summary.Workload.Stats.median;
      seconds_mad = summary.Workload.Stats.mad;
      minor_words_per_node =
        tot.Resource.t_minor_words /. float_of_int n;
      peak_heap_mb = Resource.peak_heap_mb tot;
    }
  in
  let sim () =
    let g = Gen.grid 8 8 in
    (* timed samples run untraced; one final traced run supplies the
       logical and resource columns *)
    let _, summary =
      Workload.Stats.measure ~plan:Workload.Stats.default_plan (fun () ->
          Weakdiam.Distributed.carve g ~epsilon:0.5)
    in
    let sink = Congest.Trace.sink () in
    let res = Resource.create () in
    Resource.attach res sink;
    let r = Weakdiam.Distributed.carve ~trace:sink g ~epsilon:0.5 in
    let tot = Resource.totals res in
    let s = r.Weakdiam.Distributed.sim_stats in
    {
      Trajectory.name = "weak_carve_sim/grid64";
      rounds = s.Congest.Sim.rounds_used;
      messages = s.Congest.Sim.total_messages;
      max_bits = s.Congest.Sim.max_bits_seen;
      phases = List.length (Congest.Span.rollups sink);
      seconds = summary.Workload.Stats.median;
      seconds_mad = summary.Workload.Stats.mad;
      minor_words_per_node = tot.Resource.t_minor_words /. 64.0;
      peak_heap_mb = Resource.peak_heap_mb tot;
    }
  in
  (* repair headline, mapped onto the snapshot shape so the >10%
     comparator guards locality and cost: rounds := touched nodes,
     messages := dirty clusters, max_bits := region edges, phases :=
     fresh clusters, seconds := repair wall time (single-shot, so its
     MAD is 0 and the comparator keeps the pure 10% gate) *)
  let repair_entry () =
    let res = Resource.create () in
    let rep, region_edges, _scratch = repair_trial ~trial:1 in
    let tot = Resource.totals res in
    {
      Trajectory.name = "repair/greedy_grid256";
      rounds = rep.Repair.touched_nodes;
      messages = rep.Repair.dirty_clusters;
      max_bits = region_edges;
      phases = rep.Repair.fresh_clusters;
      seconds = rep.Repair.seconds;
      seconds_mad = 0.0;
      minor_words_per_node = tot.Resource.t_minor_words /. 256.0;
      peak_heap_mb = Resource.peak_heap_mb tot;
    }
  in
  [
    decomp "thm2.3" 256;
    decomp "thm3.4" 256;
    decomp "ggr21" 256;
    decomp "mpx" 256;
    sim ();
    repair_entry ();
  ]

(* prints one "regression: ..." line per significant metric increase
   (the MAD-aware max(10%, k*MAD) gate); CI greps for the prefix and
   surfaces them as non-blocking warnings. Snapshots recorded under
   different environment fingerprints are not compared at all. *)
let compare_snapshots ~old_line ~new_line =
  match Trajectory.compare_snapshots ~old_line ~new_line () with
  | Trajectory.Incomparable { old_fp; new_fp } ->
      Format.fprintf fmt
        "environment fingerprint changed -- skipping the regression \
         comparison@.  previous: %s@.  current:  %s@."
        old_fp new_fp;
      0
  | Trajectory.Regressions regs ->
      List.iter
        (fun r -> Format.fprintf fmt "%s@." (Trajectory.regression_line r))
        regs;
      List.length regs

let fingerprint = lazy (Workload.Stats.current_fingerprint ())

let run_record_only () =
  let t0 = Unix.gettimeofday () in
  section
    "B.RECORD -- headline-metrics snapshot appended to BENCH_trajectory.json";
  let entries = record_entries () in
  Format.fprintf fmt "%-24s %10s %10s %8s %7s %9s %9s %12s %8s@." "workload"
    "rounds" "messages" "maxbits" "phases" "seconds" "mad" "minorW/node"
    "peakMB";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-24s %10d %10d %8d %7d %9.3f %9.4f %12.0f %8.1f@."
        e.Trajectory.name e.Trajectory.rounds e.Trajectory.messages
        e.Trajectory.max_bits e.Trajectory.phases e.Trajectory.seconds
        e.Trajectory.seconds_mad e.Trajectory.minor_words_per_node
        e.Trajectory.peak_heap_mb)
    entries;
  Format.fprintf fmt "@.environment: %a@." Workload.Stats.pp_fingerprint
    (Lazy.force fingerprint);
  let line =
    Trajectory.snapshot_json
      ~fingerprint:(Lazy.force fingerprint)
      ~time:(Unix.time ()) entries
  in
  let prev = read_trajectory () in
  Trajectory.write trajectory_path (prev @ [ line ]);
  Format.fprintf fmt "appended snapshot %d to %s@."
    (List.length prev + 1)
    trajectory_path;
  (match List.rev prev with
  | last :: _ ->
      if compare_snapshots ~old_line:last ~new_line:line = 0 then
        Format.fprintf fmt "no significant regressions vs the previous \
                            snapshot@."
  | [] -> Format.fprintf fmt "first snapshot -- nothing to compare against@.");
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* B.DASHBOARD: the trajectory rendered as a self-contained HTML page   *)
(* ------------------------------------------------------------------ *)

let dashboard_path = "BENCH_dashboard.html"

let run_dashboard_only () =
  section "B.DASHBOARD -- trajectory sparkline dashboard";
  let lines = read_trajectory () in
  Workload.Dashboard.write ~path:dashboard_path lines;
  Format.fprintf fmt "%d snapshots rendered to %s@." (List.length lines)
    dashboard_path

(* ------------------------------------------------------------------ *)
(* B.SCALE: million-node CSR substrate end-to-end                       *)
(* ------------------------------------------------------------------ *)

(* n = 2^20 nodes, 2*10^7 edge samples: the scale SNIPPETS.md's LDD
   benchmarks run at, and ~3 orders of magnitude past the grid suite *)
let scale_n = 1 lsl 20
let scale_samples = 20_000_000

let run_scale_only () =
  let t0 = Unix.gettimeofday () in
  section
    (Printf.sprintf
       "B.SCALE -- RMAT n=%d, %d edge samples: generate -> save -> \
        mmap-load -> decompose -> audit"
       scale_n scale_samples);
  let dir = "bench_results" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let csr_path = Filename.concat dir "rmat1M.csr" in
  let spill_path = Filename.concat dir "rmat1M.trace" in
  (* the ~90 s pipeline used to run completely dark: a process-lifetime
     recorder now pulses phase/elapsed/peak-heap to stderr per stage *)
  let res = Resource.create () in
  let timed name f =
    Resource.heartbeat res name;
    let s0 = Unix.gettimeofday () in
    let x = f () in
    let dt = Unix.gettimeofday () -. s0 in
    Format.fprintf fmt "%-12s %8.2f s@." name dt;
    (x, dt)
  in
  let rng = Rng.create seed in
  let g, gen_s =
    timed "generate" (fun () -> Gen.rmat rng ~n:scale_n ~m:scale_samples)
  in
  Format.fprintf fmt "  n=%d m=%d maxdeg=%d@." (Graph.n g) (Graph.m g)
    (Graph.max_degree g);
  let (), save_s = timed "save_csr" (fun () -> Io.save_csr csr_path g) in
  (* drop the built graph: everything downstream runs off the mapping *)
  let g, load_s = timed "mmap_load" (fun () -> Io.load_csr csr_path) in
  (* a deliberately small in-memory buffer, so the run exercises the
     streaming spill path rather than fitting in RAM by accident *)
  let sink = Congest.Trace.sink ~capacity:4_096 ~spill:spill_path () in
  let cost = Congest.Cost.create ~trace:sink () in
  let algo = Algorithms.find_decomposer "greedy" in
  (* a second recorder windowed to the decomposition alone, so the scale
     row's resource columns cover the engine, not the generator *)
  let dec_res = Resource.create () in
  let dec, dec_s =
    timed "decompose" (fun () -> algo.Algorithms.run ~cost ~seed g)
  in
  let dec_tot = Resource.totals dec_res in
  let colors = Cluster.Decomposition.num_colors dec in
  let clusters =
    Cluster.Clustering.num_clusters (Cluster.Decomposition.clustering dec)
  in
  let phases = List.length (Congest.Span.rollups sink) in
  Format.fprintf fmt
    "  colors=%d clusters=%d rounds=%d messages=%d spilled_events=%d@."
    colors clusters (Congest.Cost.rounds cost) (Congest.Cost.messages cost)
    (Congest.Trace.spilled sink);
  let audit, cert_s = timed "certify" (fun () -> Audit.certify_decomposition dec) in
  let verdict, verify_s = timed "verify" (fun () -> Audit.verify g audit) in
  (match verdict with
  | Ok () -> Format.fprintf fmt "@.audit: PASS@."
  | Error e -> Format.fprintf fmt "@.audit: FAIL (%s)@." e);
  (* the scale row rides the same snapshot machinery as 'record' *)
  let entry =
    {
      Trajectory.name = "scale/rmat1M";
      rounds = Congest.Cost.rounds cost;
      messages = Congest.Cost.messages cost;
      max_bits = Congest.Cost.max_message_bits cost;
      phases;
      seconds = dec_s;
      seconds_mad = 0.0;
      minor_words_per_node =
        dec_tot.Resource.t_minor_words /. float_of_int scale_n;
      peak_heap_mb = Resource.peak_heap_mb dec_tot;
    }
  in
  let line =
    Trajectory.snapshot_json
      ~fingerprint:(Lazy.force fingerprint)
      ~time:(Unix.time ()) [ entry ]
  in
  let prev = read_trajectory () in
  Trajectory.write trajectory_path (prev @ [ line ]);
  Format.fprintf fmt "appended scale snapshot %d to %s@."
    (List.length prev + 1)
    trajectory_path;
  (match List.rev prev with
  | last :: _ -> ignore (compare_snapshots ~old_line:last ~new_line:line)
  | [] -> ());
  let oc = open_out (Filename.concat dir "scale.csv") in
  output_string oc "metric,value\n";
  List.iter
    (fun (k, v) -> output_string oc (Printf.sprintf "%s,%s\n" k v))
    [
      ("n", string_of_int (Graph.n g));
      ("m", string_of_int (Graph.m g));
      ("colors", string_of_int colors);
      ("clusters", string_of_int clusters);
      ("rounds", string_of_int (Congest.Cost.rounds cost));
      ("messages", string_of_int (Congest.Cost.messages cost));
      ("spilled_events", string_of_int (Congest.Trace.spilled sink));
      ("audit", match verdict with Ok () -> "pass" | Error _ -> "fail");
      ("generate_seconds", Printf.sprintf "%.3f" gen_s);
      ("save_seconds", Printf.sprintf "%.3f" save_s);
      ("mmap_load_seconds", Printf.sprintf "%.3f" load_s);
      ("decompose_seconds", Printf.sprintf "%.3f" dec_s);
      ("certify_seconds", Printf.sprintf "%.3f" cert_s);
      ("verify_seconds", Printf.sprintf "%.3f" verify_s);
    ];
  close_out oc;
  Format.fprintf fmt "CSV dump written to %s/scale.csv@." dir;
  (* the spill and the 170 MB graph image are scratch, not artifacts *)
  Congest.Trace.clear sink;
  if Sys.file_exists csr_path then Sys.remove csr_path;
  Resource.heartbeat res "done";
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0);
  if verdict <> Ok () then exit 1

(* ------------------------------------------------------------------ *)
(* B.ANALYZE: whole-tree static analysis wall-clock                     *)
(* ------------------------------------------------------------------ *)

(* times tools/analyze over every .cmt dune produced for lib/bench/bin
   and rides the same trajectory machinery as 'record', so the >10%
   comparator guards the analyzer's cost the way it guards the
   algorithms' *)
let run_analyze_only () =
  let t0 = Unix.gettimeofday () in
  section
    "B.ANALYZE -- typed whole-program analysis (domain-safety + [@hot] \
     allocations) over the built tree";
  let roots =
    [ "_build/default/lib"; "_build/default/bench"; "_build/default/bin" ]
  in
  let cmts = List.length (Analyze_core.cmt_paths roots) in
  if cmts = 0 then
    Format.fprintf fmt
      "no .cmt files under %s -- run `dune build @@check` first; nothing \
       to time@."
    (String.concat ", " roots)
  else begin
    let res = Resource.create () in
    let minor0 = Gc.minor_words () in
    let result = Analyze_core.analyze roots in
    let seconds = Unix.gettimeofday () -. t0 in
    let minor_words = Gc.minor_words () -. minor0 in
    let tot = Resource.totals res in
    let shared =
      List.length
        (List.filter
           (fun e -> e.Analyze_core.e_class = Analyze_core.Shared)
           result.Analyze_core.r_entries)
    in
    let findings = List.length result.Analyze_core.r_findings in
    Format.fprintf fmt
      "%d cmts, %d units, %d mutable values (%d shared), %d [@@hot] \
       functions, %d findings in %.3f s@."
      cmts result.Analyze_core.r_units
      (List.length result.Analyze_core.r_entries)
      shared
      (List.length result.Analyze_core.r_hots)
      findings seconds;
    let entry =
      {
        Trajectory.name = "analyze/tree";
        rounds = result.Analyze_core.r_units;
        messages = List.length result.Analyze_core.r_entries;
        max_bits = shared;
        phases = findings;
        seconds;
        seconds_mad = 0.0;
        minor_words_per_node =
          minor_words /. float_of_int (max 1 result.Analyze_core.r_units);
        peak_heap_mb = Resource.peak_heap_mb tot;
      }
    in
    let line =
      Trajectory.snapshot_json
        ~fingerprint:(Lazy.force fingerprint)
        ~time:(Unix.time ()) [ entry ]
    in
    let prev = read_trajectory () in
    Trajectory.write trajectory_path (prev @ [ line ]);
    Format.fprintf fmt "appended analyze snapshot %d to %s@."
      (List.length prev + 1)
      trajectory_path;
    (match List.rev prev with
    | last :: _ -> ignore (compare_snapshots ~old_line:last ~new_line:line)
    | [] -> ());
    (try
       let dir = "bench_results" in
       if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
       let oc = open_out (Filename.concat dir "analyze.csv") in
       output_string oc "metric,value\n";
       List.iter
         (fun (k, v) -> output_string oc (Printf.sprintf "%s,%s\n" k v))
         [
           ("cmts", string_of_int cmts);
           ("units", string_of_int result.Analyze_core.r_units);
           ( "mutable_values",
             string_of_int (List.length result.Analyze_core.r_entries) );
           ("shared", string_of_int shared);
           ( "hot_functions",
             string_of_int (List.length result.Analyze_core.r_hots) );
           ("findings", string_of_int findings);
           ("seconds", Printf.sprintf "%.3f" seconds);
         ];
       close_out oc;
       Format.fprintf fmt "CSV dump written to bench_results/analyze.csv@."
     with Sys_error e -> Format.fprintf fmt "(skipping CSV dump: %s)@." e)
  end;
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)

let run_faults_only () =
  let t0 = Unix.gettimeofday () in
  let rows = faults_experiment () in
  (try
     let dir = "bench_results" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let oc = open_out (Filename.concat dir "faults.csv") in
     output_string oc (Workload.Faults.csv rows);
     close_out oc;
     Format.fprintf fmt "@.CSV dump written to %s/faults.csv@." dir
   with Sys_error e -> Format.fprintf fmt "@.(skipping CSV dump: %s)@." e);
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)

let () =
  Format.fprintf fmt
    "strongdecomp benchmark harness -- reproduction of Chang & Ghaffari, \
     PODC 2021@.mode: %s (pass 'full' for the n=16384 sweep, 'quick' for a \
     smoke test,@.'faults' for the graceful-degradation sweep only, 'trace' \
     for the observability@.overhead experiments only, 'conform' for the \
     verifier-overhead experiment@.only, 'causal' for the critical-path \
     analyzer replay cost, 'chaos' for the@.self-healing sweep and the \
     repair-cost headline ('chaos quick' for a smoke),@.'record' to append \
     a headline snapshot to the persistent BENCH_trajectory.json,@.'scale' \
     for the million-node CSR end-to-end smoke, 'resource' for the@.resource-\
     recorder overhead experiment, 'analyze' for the whole-tree@.static-\
     analysis timing, 'dashboard' to render BENCH_trajectory.json to@.\
     BENCH_dashboard.html)@."
    (match mode with
    | `Quick -> "quick"
    | `Standard -> "standard"
    | `Full -> "full"
    | `Faults -> "faults"
    | `Trace -> "trace"
    | `Conform -> "conform"
    | `Causal -> "causal"
    | `Chaos -> if chaos_quick then "chaos (quick)" else "chaos"
    | `Record -> "record"
    | `Scale -> "scale"
    | `Resource -> "resource"
    | `Analyze -> "analyze"
    | `Dashboard -> "dashboard");
  if mode = `Faults then run_faults_only ()
  else if mode = `Trace then run_trace_only ()
  else if mode = `Conform then run_conform_only ()
  else if mode = `Causal then run_causal_only ()
  else if mode = `Chaos then run_chaos_only ()
  else if mode = `Record then run_record_only ()
  else if mode = `Scale then run_scale_only ()
  else if mode = `Resource then run_resource_only ()
  else if mode = `Analyze then run_analyze_only ()
  else if mode = `Dashboard then run_dashboard_only ()
  else begin
  let t0 = Unix.gettimeofday () in
  let rows1 = table1 () in
  headline rows1;
  let rows2 = table2 () in
  shape_check rows2;
  messages_experiment ();
  barrier_experiment ();
  lemma31_experiment ();
  apps_experiment ();
  sim_experiment ();
  ablation_presets ();
  ablation_epsilon_split ();
  ablation_colors_vs_eps ();
  ablation_apps_extra ();
  bechamel_suite ();
  (try
     let dir = "bench_results" in
     if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
     let write name contents =
       let oc = open_out (Filename.concat dir name) in
       output_string oc contents;
       close_out oc
     in
     write "table1.csv" (Workload.Measure.decomp_csv rows1);
     write "table2.csv" (Workload.Measure.carve_csv rows2);
     Format.fprintf fmt "@.CSV dumps written to %s/@." dir
   with Sys_error e ->
     Format.fprintf fmt "@.(skipping CSV dump: %s)@." e);
  Format.fprintf fmt "@.total benchmark time: %.1f s@."
    (Unix.gettimeofday () -. t0)
  end
