(* Typed whole-program analyzer over dune-produced .cmt files: mutable-
   state inventory on a local/owned/shared escape lattice, per-module
   domain-safety verdicts gated on [@domain_unsafe "reason"] annotations,
   and interprocedural allocation analysis of [@hot] functions with
   [@alloc_ok "reason"] acceptance. See DESIGN.md §14. *)

type escape = Local | Owned | Shared

val escape_name : escape -> string

type entry = {
  e_file : string;
  e_line : int;
  e_col : int;
  e_unit : string;
  e_binding : string;
  e_fn : string;
  e_kind : string;
  e_class : escape;
  e_reason : string option;
}

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_key : string;
  f_detail : string;
}

type hot_fn = {
  h_unit : string;
  h_fn : string;
  h_file : string;
  h_line : int;
  h_allocs : int;
  h_accepted : int;
  h_unresolved : int;
}

type mutable_type = { t_unit : string; t_name : string; t_fields : string list }

type module_report = {
  m_unit : string;
  m_file : string;
  m_local : int;
  m_owned : int;
  m_shared_annotated : int;
  m_shared_open : int;
}

type result = {
  r_units : int;
  r_entries : entry list;
  r_findings : finding list;
  r_hots : hot_fn list;
  r_mutable_types : mutable_type list;
  r_modules : module_report list;
}

type config = {
  allow : (string * string) list;  (** (rule, source-path substring) *)
  disabled : string list;
}

val default_config : config

val rules : (string * string) list
(** rule name -> one-line description *)

val cmt_paths : string list -> string list
(** every .cmt under the given roots, sorted *)

val analyze : ?config:config -> string list -> result
(** sweep every .cmt under the given root directories *)

val read_baseline : string -> string list
(** accepted finding keys from a {"accept":[...]} baseline file;
    [] when the file does not exist *)

val split_baseline :
  accept:string list -> finding list -> finding list * finding list
(** (open findings, baseline-accepted findings) *)

val to_json : ?accepted:finding list -> result -> string
(** deterministic JSON report; [accepted] lists baseline-demoted
    findings separately from the open ones in the result *)

val pp_finding : Format.formatter -> finding -> unit
val pp_summary : Format.formatter -> result -> unit
