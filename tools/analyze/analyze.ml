(* Driver for the typed whole-program analyzer: sweep every .cmt under
   the given roots (default: dune's output for lib/, bench/ and bin/),
   print findings and the per-module domain-safety summary, optionally
   write the JSON report, and exit non-zero when un-annotated shared
   mutable state or hot-path allocations remain.

   Usage:
     analyze [--json FILE] [--baseline FILE] [--allow RULE:PATH]
             [--disable RULE] [--rules] [ROOT...]

   ROOTs are directories searched recursively for .cmt files; run
   `dune build @check` (or a plain build) first so they exist. *)

let default_roots =
  [ "_build/default/lib"; "_build/default/bench"; "_build/default/bin" ]

let usage () =
  prerr_endline
    "usage: analyze [--json FILE] [--baseline FILE] [--allow RULE:PATH] \
     [--disable RULE] [--rules] [ROOT...]";
  exit 2

let () =
  let json_out = ref None in
  let baseline = ref None in
  let allow = ref [] in
  let disabled = ref [] in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--baseline" :: file :: rest ->
        baseline := Some file;
        parse rest
    | "--allow" :: spec :: rest ->
        (match String.index_opt spec ':' with
        | Some i ->
            allow :=
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
              :: !allow
        | None -> usage ());
        parse rest
    | "--disable" :: rule :: rest ->
        disabled := rule :: !disabled;
        parse rest
    | "--rules" :: _ ->
        List.iter
          (fun (name, doc) -> Printf.printf "%-14s %s\n" name doc)
          Analyze_core.rules;
        exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = if !roots = [] then default_roots else List.rev !roots in
  let config =
    { Analyze_core.allow = List.rev !allow; disabled = List.rev !disabled }
  in
  let result = Analyze_core.analyze ~config roots in
  if result.Analyze_core.r_units = 0 then begin
    Printf.eprintf
      "analyze: no .cmt files under %s — run `dune build @check` first\n"
      (String.concat ", " roots);
    exit 2
  end;
  let accept =
    match !baseline with
    | None -> []
    | Some file -> Analyze_core.read_baseline file
  in
  let open_findings, accepted =
    Analyze_core.split_baseline ~accept result.Analyze_core.r_findings
  in
  (match !json_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc
        (Analyze_core.to_json ~accepted
           { result with Analyze_core.r_findings = open_findings });
      output_char oc '\n';
      close_out oc);
  Analyze_core.pp_summary Format.std_formatter result;
  List.iter
    (fun f -> Format.printf "%a@." Analyze_core.pp_finding f)
    open_findings;
  Format.printf
    "%d units, %d mutable values (%d shared), %d [@hot] functions, %d \
     findings%s@."
    result.Analyze_core.r_units
    (List.length result.Analyze_core.r_entries)
    (List.length
       (List.filter
          (fun e -> e.Analyze_core.e_class = Analyze_core.Shared)
          result.Analyze_core.r_entries))
    (List.length result.Analyze_core.r_hots)
    (List.length open_findings)
    (if accepted = [] then ""
     else Printf.sprintf " (+%d baseline-accepted)" (List.length accepted));
  if open_findings <> [] then exit 1
