(* Typed whole-program analyzer over the .cmt Typedtree files dune
   already produces (compiler-libs Cmt_format + Tast_iterator, zero new
   dependencies — same recipe as tools/lint, one level deeper: the lint
   sees parsetrees per file, this pass sees *types and resolved paths*
   across the whole program, so it can look through module aliases,
   functor bodies and closure captures).

   Three analyses, one sweep:

   1. Mutable-state inventory — every creation of a mutable value
      (ref, array literal / Array.make family, Bytes, Hashtbl, Buffer,
      Queue, Stack, Bigarray, mutable-record literals) is recorded and
      classified on a three-point escape lattice:

        local  — never leaves its defining function: only "direct"
                 uses (field/array access, container-module operations,
                 downward closures passed straight to a call);
        owned  — escapes, but only into one value's lifetime: returned,
                 stored in a constructed value, or handed to a callee;
        shared — module-global (created at module-initialization time),
                 or captured by a closure that itself escapes (returned,
                 stored in a record/tuple — e.g. a Sim.program literal —
                 or bound and then passed around as a value).

   2. Domain-safety verdict — shared mutable state is exactly what an
      OCaml 5 domain fan-out would race on, so every `shared` entry must
      carry an explicit [@domain_unsafe "reason"] annotation (on the
      creation expression, its binding, an enclosing binding, or a
      [@@@domain_unsafe "reason"] floating attribute covering the whole
      unit) or be allow-listed; anything else is a finding and the
      analyzer exits non-zero. The annotated inventory *is* the
      migration worklist for the multicore carving engine.

   3. Hot-path allocation analysis — functions marked [@hot] are scanned
      interprocedurally (through statically-resolved calls into any
      analyzed unit, depth-bounded) for allocation sites: closures,
      tuples, records, array/constructor literals, known allocating
      stdlib calls, allocation primitives and boxed int32/int64/
      nativeint arithmetic. Cold branches under raise/failwith/
      invalid_arg/assert are skipped. [@alloc_ok "reason"] accepts a
      deliberate allocation.

   Atomic.make is recognized but exempt from the domain-safety verdict:
   atomics are the sanctioned shared-state primitive for the migration.

   Output is deterministic (all sections sorted) in both the human and
   the --json form, so the committed results file is byte-stable. *)

type escape = Local | Owned | Shared

let escape_name = function
  | Local -> "local"
  | Owned -> "owned"
  | Shared -> "shared"

type entry = {
  e_file : string;
  e_line : int;
  e_col : int;
  e_unit : string;
  e_binding : string;  (* nearest binding name, or "<anon>" *)
  e_fn : string;  (* enclosing function path, or "<module-init>" *)
  e_kind : string;  (* ref / array / hashtbl / record:Foo.t / ... *)
  e_class : escape;
  e_reason : string option;  (* [@domain_unsafe] reason when present *)
}

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;  (* domain-unsafe | hot-alloc | cmt-error *)
  f_key : string;  (* stable baseline key: file|rule|scope *)
  f_detail : string;
}

type hot_fn = {
  h_unit : string;
  h_fn : string;
  h_file : string;
  h_line : int;
  h_allocs : int;  (* unaccepted allocation findings *)
  h_accepted : int;  (* [@alloc_ok] sites *)
  h_unresolved : int;  (* calls we could not resolve to a body *)
}

type mutable_type = {
  t_unit : string;
  t_name : string;
  t_fields : string list;  (* the mutable labels *)
}

type module_report = {
  m_unit : string;
  m_file : string;
  m_local : int;
  m_owned : int;
  m_shared_annotated : int;
  m_shared_open : int;  (* shared without annotation = findings *)
}

type result = {
  r_units : int;
  r_entries : entry list;
  r_findings : finding list;
  r_hots : hot_fn list;
  r_mutable_types : mutable_type list;
  r_modules : module_report list;
}

type config = {
  allow : (string * string) list;  (* rule, source-path substring *)
  disabled : string list;
}

let default_config = { allow = []; disabled = [] }

let rules =
  [
    ( "domain-unsafe",
      "shared mutable state without [@domain_unsafe \"reason\"]: a \
       domain fan-out would race on it" );
    ( "hot-alloc",
      "allocation reachable from a [@hot] function: closures, tuples, \
       records, literals, allocating calls, boxed int arithmetic" );
    ("cmt-error", "a .cmt file failed to load or had no typedtree");
  ]

(* ---------------------------------------------------------------- *)
(* small helpers                                                     *)
(* ---------------------------------------------------------------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let split_dots s = String.split_on_char '.' s

(* "Stdlib.Array.make" and "Stdlib__Array.make" both mean Array.make;
   normalize so the creation/allocation tables match either spelling. *)
let normalize_path name =
  if starts_with ~prefix:"Stdlib__" name then
    String.sub name 8 (String.length name - 8)
  else if starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let loc_pos (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ---------------------------------------------------------------- *)
(* attributes                                                        *)
(* ---------------------------------------------------------------- *)

let attr_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _;
        };
      ] ->
      Some s
  | _ -> None

let find_attr name (attrs : Parsetree.attributes) =
  List.find_opt (fun a -> a.Parsetree.attr_name.Location.txt = name) attrs

(* the annotation's reason string; Some "" when the attribute is present
   but carries no reason (the verdict treats that as unannotated: the
   grammar requires a reason) *)
let attr_reason name attrs =
  match find_attr name attrs with
  | None -> None
  | Some a -> Some (Option.value ~default:"" (attr_string a))

let has_attr name attrs = find_attr name attrs <> None

(* ---------------------------------------------------------------- *)
(* cmt loading                                                       *)
(* ---------------------------------------------------------------- *)

type unit_info = {
  u_name : string;  (* compilation unit, e.g. Dsgraph__Bfs *)
  u_file : string;  (* source path as recorded by the compiler *)
  u_str : Typedtree.structure;
  u_indexed_only : bool;  (* wrapper/alias units: index, don't analyze *)
}

let cmt_paths roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.file_exists path then
      if Sys.is_directory path then
        Array.iter
          (fun entry ->
            if entry <> "." && entry <> ".." then
              walk (Filename.concat path entry))
          (Sys.readdir path)
      else if Filename.check_suffix path ".cmt" then acc := path :: !acc
  in
  List.iter walk roots;
  List.sort compare !acc

let load_units roots =
  let units = ref [] in
  let errors = ref [] in
  List.iter
    (fun path ->
      match Cmt_format.read_cmt path with
      | exception exn ->
          errors :=
            {
              f_file = path;
              f_line = 1;
              f_col = 0;
              f_rule = "cmt-error";
              f_key = path ^ "|cmt-error|read";
              f_detail = Printexc.to_string exn;
            }
            :: !errors
      | cmt -> (
          match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile)
          with
          | Cmt_format.Implementation str, Some src ->
              let indexed_only =
                Filename.check_suffix src ".ml-gen"
                || Filename.check_suffix src ".mlgen"
              in
              units :=
                {
                  u_name = cmt.Cmt_format.cmt_modname;
                  u_file = src;
                  u_str = str;
                  u_indexed_only = indexed_only;
                }
                :: !units
          | Cmt_format.Implementation str, None ->
              (* dune's executable wrapper modules: keep for alias
                 resolution only *)
              units :=
                {
                  u_name = cmt.Cmt_format.cmt_modname;
                  u_file = path;
                  u_str = str;
                  u_indexed_only = true;
                }
                :: !units
          | _ -> ()))
    (cmt_paths roots);
  let units =
    List.sort (fun a b -> compare (a.u_file, a.u_name) (b.u_file, b.u_name))
      !units
  in
  (units, List.rev !errors)

(* ---------------------------------------------------------------- *)
(* whole-program value index (for interprocedural hot analysis)      *)
(* ---------------------------------------------------------------- *)

type index = {
  (* (unit, dotted path inside unit) -> binding *)
  values : (string * string, Typedtree.value_binding) Hashtbl.t;
  (* (unit, dotted module path) -> target path name, for module aliases
     like `module Bfs = Dsgraph__Bfs` in dune's generated wrappers and
     `module A = Hot_dep` written by hand *)
  aliases : (string * string, string) Hashtbl.t;
  unit_names : (string, unit) Hashtbl.t;
}

let pat_name (p : Typedtree.pattern) =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (_, name) -> Some name.Location.txt
  | Typedtree.Tpat_alias (_, _, name) -> Some name.Location.txt
  | _ -> None

let pat_ident (p : Typedtree.pattern) =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some id
  | Typedtree.Tpat_alias (_, id, _) -> Some id
  | _ -> None

let index_units units =
  let idx =
    {
      values = Hashtbl.create 512;
      aliases = Hashtbl.create 64;
      unit_names = Hashtbl.create 64;
    }
  in
  let rec index_module u prefix (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure str -> index_structure u prefix str
    | Typedtree.Tmod_functor (_, body) -> index_module u prefix body
    | Typedtree.Tmod_constraint (m, _, _, _) -> index_module u prefix m
    | Typedtree.Tmod_ident (p, _) ->
        Hashtbl.replace idx.aliases (u, prefix) (Path.name p)
    | _ -> ()
  and index_structure u prefix (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match pat_name vb.Typedtree.vb_pat with
                | Some name ->
                    let key =
                      if prefix = "" then name else prefix ^ "." ^ name
                    in
                    Hashtbl.replace idx.values (u, key) vb
                | None -> ())
              vbs
        | Typedtree.Tstr_module mb -> (
            match mb.Typedtree.mb_name.Location.txt with
            | Some name ->
                let sub =
                  if prefix = "" then name else prefix ^ "." ^ name
                in
                index_module u sub mb.Typedtree.mb_expr
            | None -> ())
        | Typedtree.Tstr_recmodule mbs ->
            List.iter
              (fun (mb : Typedtree.module_binding) ->
                match mb.Typedtree.mb_name.Location.txt with
                | Some name ->
                    let sub =
                      if prefix = "" then name else prefix ^ "." ^ name
                    in
                    index_module u sub mb.Typedtree.mb_expr
                | None -> ())
              mbs
        | Typedtree.Tstr_include incl ->
            index_module u prefix incl.Typedtree.incl_mod
        | _ -> ())
      str.Typedtree.str_items
  in
  List.iter
    (fun u ->
      Hashtbl.replace idx.unit_names u.u_name ();
      index_structure u.u_name "" u.u_str)
    units;
  idx

(* Resolve a referenced path (as printed by Path.name, from the unit
   [from_unit]) to an indexed binding. Handles: local values, submodule
   values, direct cross-unit references (Dsgraph__Bfs.f), references
   through wrapper/alias modules (Dsgraph.Bfs.f via the alias index),
   and a unique "__Suffix" match as a last resort. *)
let resolve_value idx ~from_unit name =
  let try_key u v = Hashtbl.find_opt idx.values (u, v) in
  let joined comps = String.concat "." comps in
  let rec through_aliases u comps fuel =
    match comps with
    | [] -> None
    | _ when fuel = 0 -> None
    | head :: rest -> (
        match try_key u (joined comps) with
        | Some vb -> Some vb
        | None -> (
            (* an alias may cover any prefix of the path *)
            let rec prefixes acc rev_pre = function
              | [] -> List.rev acc
              | c :: tl ->
                  let pre = List.rev (c :: rev_pre) in
                  prefixes ((pre, tl) :: acc) (c :: rev_pre) tl
            in
            let cands = prefixes [] [] (head :: rest) in
            let rec first = function
              | [] -> None
              | (pre, tl) :: more -> (
                  match Hashtbl.find_opt idx.aliases (u, joined pre) with
                  | Some target when tl <> [] -> (
                      let tcomps = split_dots target in
                      match tcomps with
                      | tu :: tsub when Hashtbl.mem idx.unit_names tu -> (
                          match
                            through_aliases tu (tsub @ tl) (fuel - 1)
                          with
                          | Some vb -> Some vb
                          | None -> first more)
                      | _ -> (
                          match
                            through_aliases u (tcomps @ tl) (fuel - 1)
                          with
                          | Some vb -> Some vb
                          | None -> first more))
                  | _ -> first more)
            in
            first cands))
  in
  match split_dots name with
  | [] -> None
  | [ v ] -> try_key from_unit v
  | head :: rest as comps -> (
      (* same-unit submodule value, or local alias *)
      match through_aliases from_unit comps 4 with
      | Some vb -> Some vb
      | None -> (
          (* cross-unit: first component is a compilation unit *)
          if Hashtbl.mem idx.unit_names head then
            match through_aliases head rest 4 with
            | Some vb -> Some vb
            | None -> None
          else
            (* unique mangled-name suffix: Bfs.f -> Dsgraph__Bfs.f *)
            let suffix = "__" ^ head in
            let matches =
              Hashtbl.fold
                (fun u () acc ->
                  if
                    String.length u > String.length suffix
                    && String.sub u
                         (String.length u - String.length suffix)
                         (String.length suffix)
                       = suffix
                  then u :: acc
                  else acc)
                idx.unit_names []
            in
            match matches with
            | [ u ] -> through_aliases u rest 4
            | _ -> None))

(* ---------------------------------------------------------------- *)
(* mutable-creation detection                                        *)
(* ---------------------------------------------------------------- *)

let creation_table =
  [
    ("ref", "ref");
    ("Array.make", "array");
    ("Array.create_float", "array");
    ("Array.init", "array");
    ("Array.make_matrix", "array");
    ("Array.copy", "array");
    ("Array.sub", "array");
    ("Array.append", "array");
    ("Array.concat", "array");
    ("Array.of_list", "array");
    ("Array.of_seq", "array");
    ("Array.map", "array");
    ("Array.mapi", "array");
    ("Bytes.create", "bytes");
    ("Bytes.make", "bytes");
    ("Bytes.init", "bytes");
    ("Bytes.copy", "bytes");
    ("Bytes.sub", "bytes");
    ("Bytes.of_string", "bytes");
    ("Hashtbl.create", "hashtbl");
    ("Hashtbl.copy", "hashtbl");
    ("Buffer.create", "buffer");
    ("Queue.create", "queue");
    ("Queue.copy", "queue");
    ("Stack.create", "stack");
    ("Stack.copy", "stack");
    ("Atomic.make", "atomic");
    ("Bigarray.Array0.create", "bigarray");
    ("Bigarray.Array1.create", "bigarray");
    ("Bigarray.Array2.create", "bigarray");
    ("Bigarray.Array3.create", "bigarray");
    ("Bigarray.Genarray.create", "bigarray");
    ("Bigarray.Array1.of_array", "bigarray");
    ("Bigarray.Array2.of_array", "bigarray");
  ]

let apply_head (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (head, args) -> (
      match head.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, vd) -> Some (p, vd, args)
      | _ -> None)
  | _ -> None

let prim_name (vd : Types.value_description) =
  match vd.Types.val_kind with
  | Types.Val_prim pd -> Some pd.Primitive.prim_name
  | _ -> None

let type_head_name (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> normalize_path (Path.name p)
  | _ -> "?"

(* Some creation if the expression itself builds a mutable value *)
let classify_creation (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_array _ -> Some "array"
  | Typedtree.Texp_record { fields; _ } ->
      if
        Array.exists
          (fun ((lbl : Types.label_description), _) ->
            lbl.Types.lbl_mut = Asttypes.Mutable)
          fields
      then Some ("record:" ^ type_head_name e.Typedtree.exp_type)
      else None
  | _ -> (
      match apply_head e with
      | Some (p, vd, _) -> (
          let name = normalize_path (Path.name p) in
          match List.assoc_opt name creation_table with
          | Some kind -> Some kind
          | None -> (
              match prim_name vd with
              | Some "%makemutable" -> Some "ref"
              | _ -> None))
      | None -> None)

(* ---------------------------------------------------------------- *)
(* escape analysis for a let-bound mutable value                     *)
(* ---------------------------------------------------------------- *)

let container_modules =
  [
    "Array"; "Bytes"; "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Bigarray";
    "Atomic"; "Weak";
  ]

(* operations that use a mutable value in place without taking
   ownership: container-module functions and the ref operators *)
let is_direct_op name =
  match split_dots name with
  | [ ("!" | ":=" | "incr" | "decr") ] -> true
  | m :: _ :: _ when List.mem m container_modules -> true
  | _ -> false

let iter_child_exprs f (e : Typedtree.expression) =
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ child -> f child);
    }
  in
  Tast_iterator.default_iterator.expr it e

let is_ident_of id (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident i, _, _) -> Ident.same i id
  | _ -> false

(* does [id] occur in [e] anywhere other than called directly or passed
   as a call argument? Both count as downward uses — `List.iter mark l`
   is the eta-reduced form of `List.iter (fun v -> mark v) l`. What
   remains — stored in a record/tuple/constructor, returned, assigned —
   is escaping as a value. (A callee that *stores* a functional argument,
   e.g. a hook registry, is invisible here; that is the documented
   limitation the [@domain_unsafe] annotations on such APIs cover.) *)
let escapes_as_value id (e : Typedtree.expression) =
  let found = ref false in
  let rec go (e : Typedtree.expression) =
    if !found then ()
    else
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (Path.Pident i, _, _) when Ident.same i id ->
          found := true
      | Typedtree.Texp_apply (head, args) ->
          if not (is_ident_of id head) then go head;
          List.iter
            (fun (_, a) ->
              match a with
              | Some arg when is_ident_of id arg -> ()
              | a -> Option.iter go a)
            args
      | _ -> iter_child_exprs go e
  in
  go e;
  !found

let join a b =
  match (a, b) with
  | Shared, _ | _, Shared -> Shared
  | Owned, _ | _, Owned -> Owned
  | Local, Local -> Local

(* classify every use of [id] within [scope]; the result is the join *)
let analyze_uses id scope =
  let best = ref Local in
  let use escaping = best := join !best (if escaping then Shared else Owned) in
  let rec go ~escaping (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident i, _, _) when Ident.same i id ->
        use escaping
    | Typedtree.Texp_field (b, _, _) when is_ident_of id b ->
        (* x.f : read through the value, stays local *)
        ()
    | Typedtree.Texp_setfield (b, _, _, v) when is_ident_of id b ->
        go ~escaping v
    | Typedtree.Texp_apply (head, args) ->
        let direct =
          match head.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) ->
              is_direct_op (normalize_path (Path.name p))
          | _ -> false
        in
        if not (is_ident_of id head) then go ~escaping head;
        List.iter
          (fun (_, a) ->
            match a with
            | None -> ()
            | Some (arg : Typedtree.expression) -> (
                if is_ident_of id arg then begin
                  (* x as argument: in-place op keeps it local,
                     any other call hands it away *)
                  if not direct then best := join !best Owned;
                  if escaping then use true
                end
                else
                  match arg.Typedtree.exp_desc with
                  | Typedtree.Texp_function { cases; _ } ->
                      (* downward funarg: runs within the call *)
                      go_cases ~escaping cases
                  | _ -> go ~escaping arg))
          args
    | Typedtree.Texp_function { cases; _ } ->
        (* a closure not in argument position escapes as a value:
           captures inside it are shared *)
        go_cases ~escaping:true cases
    | Typedtree.Texp_let (_, vbs, body) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match
              (pat_ident vb.Typedtree.vb_pat, vb.Typedtree.vb_expr.exp_desc)
            with
            | Some hid, Typedtree.Texp_function { cases; _ } ->
                (* local helper: if the helper itself never escapes,
                   uses inside it are ordinary; otherwise they are
                   captured by an escaping closure *)
                let helper_escapes = escapes_as_value hid body in
                go_cases ~escaping:(escaping || helper_escapes) cases
            | _ -> go ~escaping vb.Typedtree.vb_expr)
          vbs;
        go ~escaping body
    | _ -> iter_child_exprs (go ~escaping) e
  (* walk a function body through its whole curried-parameter spine:
     `fun u v -> e` is one closure, not a closure-returning closure *)
  and go_cases ~escaping cases =
    List.iter
      (fun (c : Typedtree.value Typedtree.case) ->
        Option.iter (go ~escaping) c.Typedtree.c_guard;
        match c.Typedtree.c_rhs.Typedtree.exp_desc with
        | Typedtree.Texp_function { cases; _ } -> go_cases ~escaping cases
        | _ -> go ~escaping c.Typedtree.c_rhs)
      cases
  in
  go ~escaping:false scope;
  !best

(* ---------------------------------------------------------------- *)
(* hot-path allocation analysis                                      *)
(* ---------------------------------------------------------------- *)

let allocating_calls =
  [
    "List.map"; "List.mapi"; "List.map2"; "List.append"; "List.concat";
    "List.concat_map"; "List.filter"; "List.filter_map"; "List.init";
    "List.rev"; "List.rev_append"; "List.rev_map"; "List.sort";
    "List.sort_uniq"; "List.of_seq"; "List.to_seq"; "List.split";
    "List.combine"; "String.concat"; "String.make"; "String.init";
    "String.sub"; "String.cat"; "String.split_on_char"; "String.map";
    "Printf.sprintf"; "Printf.printf"; "Printf.eprintf"; "Printf.fprintf";
    "Format.asprintf"; "Format.sprintf"; "Format.printf"; "Format.fprintf";
    "^"; "@"; "Buffer.contents"; "Buffer.to_bytes"; "Bytes.to_string";
    "Array.to_list"; "Hashtbl.fold"; "Filename.concat"; "string_of_int";
    "string_of_float"; "float_of_string"; "int_of_string";
  ]

let cold_heads =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

let boxed_arith_prim name =
  starts_with ~prefix:"%int64_" name
  || starts_with ~prefix:"%int32_" name
  || starts_with ~prefix:"%nativeint_" name
  || starts_with ~prefix:"caml_int64_" name
  || starts_with ~prefix:"caml_int32_" name
  || starts_with ~prefix:"caml_nativeint_" name

let allocating_prims =
  [ "%makemutable"; "caml_make_vect"; "caml_make_float_vect"; "caml_array_sub"; "caml_array_append"; "caml_array_concat"; "caml_create_bytes"; "caml_obj_block" ]

(* strip the curried-parameter spine of a function binding, returning
   the innermost bodies to scan *)
let rec hot_bodies (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases = [ { c_rhs; _ } ]; _ } ->
      hot_bodies c_rhs
  | Typedtree.Texp_function { cases; _ } ->
      List.map (fun (c : Typedtree.value Typedtree.case) -> c.Typedtree.c_rhs) cases
  | _ -> [ e ]

type hot_ctx = {
  hc_idx : index;
  hc_file : string;
  hc_unit : string;
  hc_fn : string;
  mutable hc_findings : finding list;
  mutable hc_accepted : int;
  mutable hc_unresolved : int;
  hc_visiting : (string * string, unit) Hashtbl.t;
}

let hot_finding hc ~loc ~chain detail =
  let line, col = loc_pos loc in
  let via = if chain = [] then "" else " via " ^ String.concat " -> " (List.rev chain) in
  hc.hc_findings <-
    {
      f_file = hc.hc_file;
      f_line = line;
      f_col = col;
      f_rule = "hot-alloc";
      f_key = hc.hc_file ^ "|hot-alloc|" ^ hc.hc_fn;
      f_detail =
        Printf.sprintf "[@hot] %s: %s%s" hc.hc_fn detail via;
    }
    :: hc.hc_findings

let rec hot_scan hc ~depth ~chain ~(alloc_ok : bool)
    (e : Typedtree.expression) =
  let accepted =
    alloc_ok || has_attr "alloc_ok" e.Typedtree.exp_attributes
  in
  let note loc detail =
    if accepted then hc.hc_accepted <- hc.hc_accepted + 1
    else hot_finding hc ~loc ~chain detail
  in
  let descend ?(ok = accepted) child =
    hot_scan hc ~depth ~chain ~alloc_ok:ok child
  in
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases; _ } ->
      note e.Typedtree.exp_loc "closure allocation";
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          descend c.Typedtree.c_rhs)
        cases
  | Typedtree.Texp_tuple els ->
      note e.Typedtree.exp_loc "tuple allocation";
      List.iter descend els
  | Typedtree.Texp_record { fields; extended_expression; _ } ->
      note e.Typedtree.exp_loc "record allocation";
      Array.iter
        (fun (_, def) ->
          match def with
          | Typedtree.Overridden (_, v) -> descend v
          | Typedtree.Kept _ -> ())
        fields;
      Option.iter descend extended_expression
  | Typedtree.Texp_array els ->
      note e.Typedtree.exp_loc "array-literal allocation";
      List.iter descend els
  | Typedtree.Texp_construct (_, cd, args) ->
      if args <> [] then
        note e.Typedtree.exp_loc
          (Printf.sprintf "constructor allocation (%s)"
             cd.Types.cstr_name);
      List.iter descend args
  | Typedtree.Texp_lazy body ->
      note e.Typedtree.exp_loc "lazy allocation";
      descend body
  | Typedtree.Texp_assert _ -> ()  (* cold branch *)
  | Typedtree.Texp_apply (head, args) -> (
      match head.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, vd) -> (
          let name = normalize_path (Path.name p) in
          if List.mem name cold_heads then ()  (* error path: skip args *)
          else begin
            (match prim_name vd with
            | Some prim ->
                if List.mem prim allocating_prims then
                  note e.Typedtree.exp_loc
                    (Printf.sprintf "allocating primitive %s (%s)" prim
                       name)
                else if boxed_arith_prim prim then
                  note e.Typedtree.exp_loc
                    (Printf.sprintf "boxed arithmetic %s" name)
            | None ->
                if List.mem name allocating_calls then
                  note e.Typedtree.exp_loc
                    (Printf.sprintf "allocating call %s" name)
                else if List.mem_assoc name creation_table then
                  note e.Typedtree.exp_loc
                    (Printf.sprintf "allocating call %s (fresh %s)" name
                       (List.assoc name creation_table))
                else
                  hot_call hc ~depth ~chain ~loc:e.Typedtree.exp_loc name);
            List.iter (fun (_, a) -> Option.iter descend a) args
          end)
      | _ ->
          descend head;
          List.iter (fun (_, a) -> Option.iter descend a) args)
  | _ -> iter_child_exprs descend e

(* a statically-resolved call out of a hot function: follow it into the
   analyzed program, depth-bounded *)
and hot_call hc ~depth ~chain ~loc name =
  match resolve_value hc.hc_idx ~from_unit:hc.hc_unit name with
  | None ->
      (* externals / stdlib / not statically known: count, don't guess *)
      if not (starts_with ~prefix:"Stdlib" name) then
        hc.hc_unresolved <- hc.hc_unresolved + 1
  | Some vb ->
      if has_attr "hot" vb.Typedtree.vb_attributes then ()
        (* checked at its own definition *)
      else if has_attr "alloc_ok" vb.Typedtree.vb_attributes then
        hc.hc_accepted <- hc.hc_accepted + 1
      else if depth = 0 then
        hot_finding hc ~loc ~chain
          (Printf.sprintf
             "call to %s exceeds the interprocedural depth budget \
              (mark it [@hot] or [@alloc_ok])"
             name)
      else begin
        let key = (hc.hc_unit, name) in
        if not (Hashtbl.mem hc.hc_visiting key) then begin
          Hashtbl.add hc.hc_visiting key ();
          List.iter
            (fun body ->
              hot_scan hc ~depth:(depth - 1) ~chain:(name :: chain)
                ~alloc_ok:false body)
            (hot_bodies vb.Typedtree.vb_expr);
          Hashtbl.remove hc.hc_visiting key
        end
      end

(* ---------------------------------------------------------------- *)
(* per-unit sweep: inventory + verdicts + hot functions              *)
(* ---------------------------------------------------------------- *)

type sweep_state = {
  s_idx : index;
  s_config : config;
  mutable s_entries : entry list;
  mutable s_findings : finding list;
  mutable s_hots : hot_fn list;
  mutable s_mutable_types : mutable_type list;
}

let allowed config rule file =
  List.mem rule config.disabled
  || List.exists
       (fun (r, sub) -> r = rule && contains ~sub file)
       config.allow

let sweep_unit st (u : unit_info) =
  let file = u.u_file in
  (* [@@@domain_unsafe "reason"] floating attribute covers the unit *)
  let unit_reason =
    List.fold_left
      (fun acc (item : Typedtree.structure_item) ->
        match (acc, item.Typedtree.str_desc) with
        | None, Typedtree.Tstr_attribute a
          when a.Parsetree.attr_name.Location.txt = "domain_unsafe" ->
            Some (Option.value ~default:"" (attr_string a))
        | _ -> acc)
      None u.u_str.Typedtree.str_items
  in
  (* stacks threaded through the walk *)
  let fn_stack = ref [] in
  let bind_stack = ref [] in
  let attr_stack = ref [] in
  let fn_depth = ref 0 in
  let claimed : (Location.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let current_fn () =
    match List.rev !fn_stack with
    | [] -> "<module-init>"
    | fns -> String.concat "." fns
  in
  let current_binding () =
    match !bind_stack with [] -> "<anon>" | b :: _ -> b
  in
  (* the nearest reason: creation-site attrs, then enclosing binding
     attrs, then the unit-wide floating attribute *)
  let find_reason (extra : Parsetree.attributes list) =
    let stacked =
      List.fold_left
        (fun acc attrs ->
          match acc with
          | Some _ -> acc
          | None -> attr_reason "domain_unsafe" attrs)
        None (extra @ !attr_stack)
    in
    match stacked with Some _ as r -> r | None -> unit_reason
  in
  let record_entry ~loc ~kind ~cls ~(extra_attrs : Parsetree.attributes list)
      ~binding =
    let line, col = loc_pos loc in
    let reason = find_reason extra_attrs in
    let reason, cls =
      (* atomics are the sanctioned shared primitive *)
      if kind = "atomic" && cls = Shared && reason = None then
        (Some "atomic: sanctioned shared-state primitive", cls)
      else (reason, cls)
    in
    st.s_entries <-
      {
        e_file = file;
        e_line = line;
        e_col = col;
        e_unit = u.u_name;
        e_binding = binding;
        e_fn = current_fn ();
        e_kind = kind;
        e_class = cls;
        e_reason = reason;
      }
      :: st.s_entries;
    if
      cls = Shared
      && (reason = None || reason = Some "")
      && not (allowed st.s_config "domain-unsafe" file)
    then begin
      let scope = current_fn () in
      st.s_findings <-
        {
          f_file = file;
          f_line = line;
          f_col = col;
          f_rule = "domain-unsafe";
          f_key = file ^ "|domain-unsafe|" ^ scope ^ "|" ^ binding;
          f_detail =
            Printf.sprintf
              "%s `%s` in %s is shared mutable state (%s): annotate \
               [@domain_unsafe \"reason\"] or confine it"
              kind binding scope
              (if scope = "<module-init>" then "module-global"
               else "captured by an escaping closure");
        }
        :: st.s_findings
    end
  in
  let claim (e : Typedtree.expression) =
    Hashtbl.replace claimed e.Typedtree.exp_loc ()
  in
  let is_claimed (e : Typedtree.expression) =
    Hashtbl.mem claimed e.Typedtree.exp_loc
  in
  let run_hot ~fn_name (vb : Typedtree.value_binding) =
    if not (allowed st.s_config "hot-alloc" file) then begin
      let hc =
        {
          hc_idx = st.s_idx;
          hc_file = file;
          hc_unit = u.u_name;
          hc_fn = fn_name;
          hc_findings = [];
          hc_accepted = 0;
          hc_unresolved = 0;
          hc_visiting = Hashtbl.create 8;
        }
      in
      List.iter
        (fun body -> hot_scan hc ~depth:3 ~chain:[] ~alloc_ok:false body)
        (hot_bodies vb.Typedtree.vb_expr);
      st.s_findings <- hc.hc_findings @ st.s_findings;
      let line, _ = loc_pos vb.Typedtree.vb_loc in
      st.s_hots <-
        {
          h_unit = u.u_name;
          h_fn = fn_name;
          h_file = file;
          h_line = line;
          h_allocs = List.length hc.hc_findings;
          h_accepted = hc.hc_accepted;
          h_unresolved = hc.hc_unresolved;
        }
        :: st.s_hots
    end
  in
  let rec walk_expr (e : Typedtree.expression) =
    let pushed_attrs =
      if e.Typedtree.exp_attributes <> [] then begin
        attr_stack := e.Typedtree.exp_attributes :: !attr_stack;
        true
      end
      else false
    in
    (match classify_creation e with
    | Some kind when not (is_claimed e) ->
        claim e;
        let cls = if !fn_depth = 0 then Shared else Owned in
        record_entry ~loc:e.Typedtree.exp_loc ~kind ~cls
          ~extra_attrs:[ e.Typedtree.exp_attributes ]
          ~binding:(current_binding ())
    | _ -> ());
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_let (_, vbs, body) ->
        List.iter (fun vb -> walk_vb ~toplevel:false vb body) vbs;
        walk_expr body
    | Typedtree.Texp_function { cases; _ } ->
        incr fn_depth;
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            Option.iter walk_expr c.Typedtree.c_guard;
            walk_expr c.Typedtree.c_rhs)
          cases;
        decr fn_depth
    | _ -> iter_child_exprs walk_expr e);
    if pushed_attrs then attr_stack := List.tl !attr_stack
  and walk_vb ~toplevel (vb : Typedtree.value_binding) scope =
    let name =
      Option.value ~default:"<pattern>" (pat_name vb.Typedtree.vb_pat)
    in
    if has_attr "hot" vb.Typedtree.vb_attributes then run_hot ~fn_name:name vb;
    attr_stack := vb.Typedtree.vb_attributes :: !attr_stack;
    bind_stack := name :: !bind_stack;
    (match
       (classify_creation vb.Typedtree.vb_expr, pat_ident vb.Typedtree.vb_pat)
     with
    | Some kind, Some id ->
        claim vb.Typedtree.vb_expr;
        let cls =
          if !fn_depth = 0 || toplevel then Shared
          else analyze_uses id scope
        in
        record_entry ~loc:vb.Typedtree.vb_expr.Typedtree.exp_loc ~kind ~cls
          ~extra_attrs:
            [
              vb.Typedtree.vb_expr.Typedtree.exp_attributes;
              vb.Typedtree.vb_attributes;
            ]
          ~binding:name;
        (* nested creations inside the creation's arguments *)
        iter_child_exprs walk_expr vb.Typedtree.vb_expr
    | _, _ -> (
        match vb.Typedtree.vb_expr.Typedtree.exp_desc with
        | Typedtree.Texp_function _ ->
            fn_stack := name :: !fn_stack;
            walk_expr vb.Typedtree.vb_expr;
            fn_stack := List.tl !fn_stack
        | _ -> walk_expr vb.Typedtree.vb_expr));
    bind_stack := List.tl !bind_stack;
    attr_stack := List.tl !attr_stack
  and walk_item (item : Typedtree.structure_item) =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        (* module-level: scope for escape analysis is irrelevant —
           a mutable binding evaluated at module init is shared *)
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            walk_vb ~toplevel:true vb vb.Typedtree.vb_expr)
          vbs
    | Typedtree.Tstr_eval (e, _) -> walk_expr e
    | Typedtree.Tstr_module mb -> walk_module mb.Typedtree.mb_expr
    | Typedtree.Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            walk_module mb.Typedtree.mb_expr)
          mbs
    | Typedtree.Tstr_include incl -> walk_module incl.Typedtree.incl_mod
    | Typedtree.Tstr_type (_, decls) ->
        List.iter
          (fun (td : Typedtree.type_declaration) ->
            match td.Typedtree.typ_kind with
            | Typedtree.Ttype_record lds ->
                let muts =
                  List.filter_map
                    (fun (ld : Typedtree.label_declaration) ->
                      if ld.Typedtree.ld_mutable = Asttypes.Mutable then
                        Some ld.Typedtree.ld_name.Location.txt
                      else None)
                    lds
                in
                if muts <> [] then
                  st.s_mutable_types <-
                    {
                      t_unit = u.u_name;
                      t_name = td.Typedtree.typ_name.Location.txt;
                      t_fields = muts;
                    }
                    :: st.s_mutable_types
            | _ -> ())
          decls
    | _ -> ()
  and walk_module (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure str ->
        List.iter walk_item str.Typedtree.str_items
    | Typedtree.Tmod_functor (_, body) -> walk_module body
    | Typedtree.Tmod_constraint (m, _, _, _) -> walk_module m
    | Typedtree.Tmod_apply (m1, m2, _) ->
        walk_module m1;
        walk_module m2
    | Typedtree.Tmod_unpack (e, _) -> walk_expr e
    | _ -> ()
  in
  List.iter walk_item u.u_str.Typedtree.str_items

(* ---------------------------------------------------------------- *)
(* analysis entry point                                              *)
(* ---------------------------------------------------------------- *)

let sort_entries es =
  List.sort
    (fun a b ->
      compare
        (a.e_file, a.e_line, a.e_col, a.e_binding)
        (b.e_file, b.e_line, b.e_col, b.e_binding))
    es

let sort_findings fs =
  List.sort
    (fun a b ->
      compare
        (a.f_file, a.f_line, a.f_col, a.f_rule, a.f_detail)
        (b.f_file, b.f_line, b.f_col, b.f_rule, b.f_detail))
    fs

let analyze ?(config = default_config) roots =
  let units, errors = load_units roots in
  let analyzed = List.filter (fun u -> not u.u_indexed_only) units in
  let idx = index_units units in
  let st =
    {
      s_idx = idx;
      s_config = config;
      s_entries = [];
      s_findings = [];
      s_hots = [];
      s_mutable_types = [];
    }
  in
  List.iter (fun u -> sweep_unit st u) analyzed;
  let entries = sort_entries st.s_entries in
  let findings =
    sort_findings
      (errors
      @ List.filter
          (fun f -> not (List.mem f.f_rule config.disabled))
          st.s_findings)
  in
  let modules =
    List.map
      (fun u ->
        let mine = List.filter (fun e -> e.e_unit = u.u_name) entries in
        let count p = List.length (List.filter p mine) in
        {
          m_unit = u.u_name;
          m_file = u.u_file;
          m_local = count (fun e -> e.e_class = Local);
          m_owned = count (fun e -> e.e_class = Owned);
          m_shared_annotated =
            count (fun e ->
                e.e_class = Shared
                && match e.e_reason with Some r -> r <> "" | None -> false);
          m_shared_open =
            count (fun e ->
                e.e_class = Shared
                && match e.e_reason with Some r -> r = "" | None -> true);
        })
      analyzed
  in
  {
    r_units = List.length analyzed;
    r_entries = entries;
    r_findings = findings;
    r_hots =
      List.sort (fun a b -> compare (a.h_file, a.h_line) (b.h_file, b.h_line))
        st.s_hots;
    r_mutable_types =
      List.sort (fun a b -> compare (a.t_unit, a.t_name) (b.t_unit, b.t_name))
        st.s_mutable_types;
    r_modules =
      List.sort (fun a b -> compare a.m_file b.m_file) modules;
  }

(* ---------------------------------------------------------------- *)
(* baseline                                                          *)
(* ---------------------------------------------------------------- *)

(* the baseline file is {"accept":["key", ...]}: a finding whose key is
   listed is reported but does not fail the build. The committed
   baseline is empty — every shared value is annotated at source. *)
let read_baseline path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    (* pull every string literal out of the accept array *)
    let acc = ref [] in
    let i = ref 0 in
    let len = String.length s in
    let in_accept = ref false in
    while !i < len do
      if (not !in_accept) && !i + 8 <= len && String.sub s !i 8 = "\"accept\""
      then begin
        in_accept := true;
        i := !i + 8
      end
      else if !in_accept && s.[!i] = '"' then begin
        let j = ref (!i + 1) in
        let buf = Buffer.create 32 in
        while !j < len && s.[!j] <> '"' do
          if s.[!j] = '\\' && !j + 1 < len then begin
            Buffer.add_char buf s.[!j + 1];
            j := !j + 2
          end
          else begin
            Buffer.add_char buf s.[!j];
            incr j
          end
        done;
        acc := Buffer.contents buf :: !acc;
        i := !j + 1
      end
      else incr i
    done;
    List.rev !acc
  end

let split_baseline ~accept findings =
  List.partition (fun f -> not (List.mem f.f_key accept)) findings

(* ---------------------------------------------------------------- *)
(* output                                                            *)
(* ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(accepted = []) r =
  let buf = Buffer.create 8192 in
  let add = Buffer.add_string buf in
  add (Printf.sprintf "{\"version\":1,\"units\":%d," r.r_units);
  add "\"modules\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      add
        (Printf.sprintf
           "{\"unit\":\"%s\",\"file\":\"%s\",\"local\":%d,\"owned\":%d,\"shared_annotated\":%d,\"shared_open\":%d,\"verdict\":\"%s\"}"
           (json_escape m.m_unit) (json_escape m.m_file) m.m_local m.m_owned
           m.m_shared_annotated m.m_shared_open
           (if m.m_shared_open = 0 then "safe" else "unsafe")))
    r.r_modules;
  add "],\"inventory\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      add
        (Printf.sprintf
           "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"unit\":\"%s\",\"binding\":\"%s\",\"fn\":\"%s\",\"kind\":\"%s\",\"class\":\"%s\"%s}"
           (json_escape e.e_file) e.e_line e.e_col (json_escape e.e_unit)
           (json_escape e.e_binding) (json_escape e.e_fn)
           (json_escape e.e_kind)
           (escape_name e.e_class)
           (match e.e_reason with
           | None -> ""
           | Some rsn -> Printf.sprintf ",\"reason\":\"%s\"" (json_escape rsn))))
    r.r_entries;
  add "],\"mutable_types\":[";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char buf ',';
      add
        (Printf.sprintf "{\"unit\":\"%s\",\"type\":\"%s\",\"fields\":[%s]}"
           (json_escape t.t_unit) (json_escape t.t_name)
           (String.concat ","
              (List.map (fun f -> "\"" ^ json_escape f ^ "\"") t.t_fields))))
    r.r_mutable_types;
  add "],\"hot\":[";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      add
        (Printf.sprintf
           "{\"unit\":\"%s\",\"fn\":\"%s\",\"file\":\"%s\",\"line\":%d,\"allocs\":%d,\"accepted\":%d,\"unresolved\":%d}"
           (json_escape h.h_unit) (json_escape h.h_fn) (json_escape h.h_file)
           h.h_line h.h_allocs h.h_accepted h.h_unresolved))
    r.r_hots;
  let emit_findings fs =
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        add
          (Printf.sprintf
             "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"key\":\"%s\",\"detail\":\"%s\"}"
             (json_escape f.f_file) f.f_line f.f_col (json_escape f.f_rule)
             (json_escape f.f_key) (json_escape f.f_detail)))
      fs
  in
  add "],\"findings\":[";
  emit_findings r.r_findings;
  add "],\"accepted_findings\":[";
  emit_findings accepted;
  add "],\"counts\":{";
  List.iteri
    (fun i (rule, _) ->
      if i > 0 then Buffer.add_char buf ',';
      add
        (Printf.sprintf "\"%s\":%d" (json_escape rule)
           (List.length
              (List.filter (fun f -> f.f_rule = rule) r.r_findings))))
    rules;
  add "}}";
  Buffer.contents buf

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.f_file f.f_line f.f_col f.f_rule
    f.f_detail

let pp_summary fmt r =
  Format.fprintf fmt "%-28s %-34s %6s %6s %9s %6s  %s@." "unit" "file"
    "local" "owned" "annotated" "open" "verdict";
  List.iter
    (fun m ->
      Format.fprintf fmt "%-28s %-34s %6d %6d %9d %6d  %s@." m.m_unit
        m.m_file m.m_local m.m_owned m.m_shared_annotated m.m_shared_open
        (if m.m_shared_open = 0 then "safe" else "UNSAFE"))
    r.r_modules;
  if r.r_hots <> [] then begin
    Format.fprintf fmt "@.%-28s %-30s %7s %9s %11s@." "unit" "[@hot]"
      "allocs" "accepted" "unresolved";
    List.iter
      (fun h ->
        Format.fprintf fmt "%-28s %-30s %7d %9d %11d@." h.h_unit h.h_fn
          h.h_allocs h.h_accepted h.h_unresolved)
      r.r_hots
  end
