(** Source-level CONGEST conformance lint.

    Parses every [.ml] file with the compiler's own front end
    ({!Parse.implementation}) and walks the AST with an {!Ast_iterator},
    so the checks see code the way the compiler does — through comments,
    strings, and line noise that defeat grep. The rules encode the
    repository's model discipline (DESIGN.md §9):

    - [random] — [Stdlib.Random] anywhere outside [Dsgraph.Rng]: every
      random bit must flow from an explicit seed, or replay determinism
      (and with it the whole measurement methodology) dies;
    - [obj] — any use of [Obj.*];
    - [catchall] — [try … with _ ->] without a [when] guard: swallows
      [Bandwidth_exceeded] and friends that the simulator uses to reject
      non-conforming programs;
    - [print-in-program] — [print_*] / [Printf] / [Format] printing
      inside a [Sim.program] record ([{ init; round; … }]): node
      programs may only communicate through their outboxes;
    - [physeq] — physical equality [==] / [!=], which on immutable
      values is a latent nondeterminism;
    - [trace-emit] — calling the writer side of the trace sink API
      ([Trace.record], [Trace.emit_message_*], [Trace.enter_span] /
      [exit_span]) outside [lib/congest]: forged events break the
      stream's event-order contract that every replay consumer
      ([Metrics], [Span], [Causal]) relies on. Read-only consumers are
      allowed anywhere;
    - [raw-io] — raw [Unix] file-descriptor I/O ([map_file], [openfile],
      [read], [write], …) outside [Dsgraph.Io] and the trace sink's
      spill path: ad-hoc I/O bypasses the checksummed CSR format;
    - [wallclock] — [Unix.gettimeofday] / [Unix.time] / [Sys.time] /
      [Gc.*] outside [Congest.Resource], [Workload.Stats] (the
      multi-sample statistical runner, which settles the heap between
      samples) and [bench/]: the resource side channel is the single
      sanctioned clock and GC read point, so engines and node programs
      can never branch on real time or allocator state.

    Findings are reported with the compiler's notion of location. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  detail : string;
}

type config = {
  disabled : string list;  (** rule names switched off entirely *)
  allow : (string * string) list;
      (** [(rule, path-substring)] exemptions: a finding of [rule] in a
          file whose path contains the substring is suppressed *)
}

val rules : (string * string) list
(** [(name, description)] of every rule, for [--help] and the report. *)

val default_config : config
(** No rules disabled; [Stdlib.Random] allowed in [dsgraph/rng] (the one
    sanctioned wrapper) and trace writers allowed in [lib/congest] (the
    instrumentation layer itself). *)

val lint_file : ?config:config -> string -> finding list
(** Parse and check one [.ml] file. A file that does not parse yields a
    single [parse-error] finding rather than an exception. *)

val ml_files : string list -> string list
(** Recursively collect [.ml] files under the given roots (skipping
    [_build], [.git], and hidden directories), sorted. *)

val pp_finding : Format.formatter -> finding -> unit

val sort_findings : finding list -> finding list
(** (file, line, col, rule) order: the emit order is a function of the
    findings alone, not of the filesystem walk order. *)

val to_json : files_scanned:int -> finding list -> string
(** The [lint_results.json] payload: rule list, file count, findings
    (sorted with {!sort_findings}) and a per-rule [counts] object. *)
