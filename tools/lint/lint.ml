(* CONGEST conformance lint driver:

     dune exec tools/lint/lint.exe                     # lint lib/ bin/ bench/
     dune exec tools/lint/lint.exe -- --json lint_results.json lib

   Exits non-zero iff any finding survives the allow list. *)

let () =
  let roots = ref [] in
  let json_path = ref "" in
  let allow = ref Lint_core.default_config.Lint_core.allow in
  let disabled = ref [] in
  let list_rules = ref false in
  let spec =
    [
      ( "--json",
        Arg.Set_string json_path,
        "FILE  write machine-readable results (lint_results.json)" );
      ( "--allow",
        Arg.String
          (fun s ->
            match String.index_opt s ':' with
            | Some i ->
                allow :=
                  ( String.sub s 0 i,
                    String.sub s (i + 1) (String.length s - i - 1) )
                  :: !allow
            | None ->
                raise (Arg.Bad (Printf.sprintf "--allow %S: want RULE:PATH" s))
          ),
        "RULE:PATH  suppress RULE in files whose path contains PATH" );
      ( "--disable",
        Arg.String (fun s -> disabled := s :: !disabled),
        "RULE  switch a rule off entirely" );
      ("--rules", Arg.Set list_rules, " list the rules and exit");
    ]
  in
  Arg.parse spec
    (fun r -> roots := r :: !roots)
    "lint [options] [DIR ...]   (default: lib bin bench)";
  if !list_rules then begin
    List.iter
      (fun (name, doc) -> Printf.printf "%-18s %s\n" name doc)
      Lint_core.rules;
    exit 0
  end;
  let config = { Lint_core.disabled = !disabled; allow = !allow } in
  let roots =
    if !roots = [] then [ "lib"; "bin"; "bench" ] else List.rev !roots
  in
  let files = Lint_core.ml_files roots in
  if files = [] then begin
    Printf.eprintf "lint: no .ml files under %s\n" (String.concat " " roots);
    exit 2
  end;
  let findings =
    Lint_core.sort_findings
      (List.concat_map (fun f -> Lint_core.lint_file ~config f) files)
  in
  List.iter
    (fun f -> Format.printf "%a@." Lint_core.pp_finding f)
    findings;
  if !json_path <> "" then begin
    let oc = open_out !json_path in
    output_string oc
      (Lint_core.to_json ~files_scanned:(List.length files) findings);
    output_char oc '\n';
    close_out oc
  end;
  Printf.printf "lint: %d file(s) scanned, %d finding(s)\n"
    (List.length files) (List.length findings);
  exit (if findings = [] then 0 else 1)
