type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  detail : string;
}

type config = {
  disabled : string list;
  allow : (string * string) list;
}

let rules =
  [
    ("random", "Stdlib.Random outside Dsgraph.Rng breaks seeded replay");
    ("obj", "Obj.* defeats the type system");
    ("catchall", "unguarded 'try ... with _ ->' swallows model violations");
    ( "print-in-program",
      "printing inside a Sim.program: nodes talk through outboxes only" );
    ("physeq", "physical equality (==/!=) is representation-dependent");
    ( "trace-emit",
      "writing trace events outside lib/congest bypasses the sink's \
       event-order contract" );
    ( "graph-edit",
      "Graph.apply_edits outside the repair engine: fault deltas must \
       flow through Cluster.Repair's audited state" );
    ( "raw-io",
      "raw Unix file I/O outside Dsgraph.Io / the trace sink bypasses \
       the checksummed CSR format and the spill protocol" );
    ( "wallclock",
      "clock/GC reads outside Congest.Resource / bench let node \
       programs observe real time and allocator state, breaking \
       deterministic replay" );
    ("parse-error", "file does not parse");
  ]

let default_config =
  {
    disabled = [];
    allow =
      [
        ("random", "dsgraph/rng");
        ("trace-emit", "lib/congest");
        ("graph-edit", "cluster/repair");
        ("graph-edit", "dsgraph");
        ("raw-io", "dsgraph/io");
        ("raw-io", "congest/trace");
        ("wallclock", "congest/resource");
        ("wallclock", "workload/stats");
        ("wallclock", "bench/");
      ];
  }

(* Trace writers: the record/emit side of the sink API. Consumers
   (length, iter, events, clear, of_jsonl, ...) are fine anywhere. *)
let trace_emit_names =
  [
    "record";
    "emit_message_sent";
    "emit_message_delivered";
    "enter_span";
    "exit_span";
  ]

(* Raw file-descriptor I/O: mapping, opening, reading, writing, seeking.
   Unix.gettimeofday and friends are the wallclock rule's business. *)
let raw_io_names =
  [
    "map_file";
    "openfile";
    "read";
    "write";
    "single_write";
    "lseek";
    "ftruncate";
  ]

(* substring check, for allow-list path matching *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let print_names =
  [
    "print_string";
    "print_bytes";
    "print_char";
    "print_int";
    "print_float";
    "print_endline";
    "print_newline";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
  ]

let lint_structure ~config ~file structure =
  let findings = ref [] in
  let add loc rule detail =
    let allowed =
      List.mem rule config.disabled
      || List.exists
           (fun (r, sub) -> r = rule && contains ~sub file)
           config.allow
    in
    if not allowed then begin
      let p = loc.Location.loc_start in
      findings :=
        {
          file;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          detail;
        }
        :: !findings
    end
  in
  let check_path loc path =
    (match path with
    | "Random" :: _ | "Stdlib" :: "Random" :: _ ->
        add loc "random"
          (String.concat "." path ^ ": draw from Dsgraph.Rng instead")
    | "Obj" :: _ | "Stdlib" :: "Obj" :: _ ->
        add loc "obj" (String.concat "." path)
    | "Gc" :: _ | "Stdlib" :: "Gc" :: _ ->
        add loc "wallclock"
          (String.concat "." path
          ^ ": GC introspection belongs in Congest.Resource")
    | _ -> ());
    match List.rev path with
    | ("==" | "!=") :: _ ->
        add loc "physeq"
          (List.hd (List.rev path) ^ ": use structural (=/<>) equality")
    | name :: "Trace" :: _ when List.mem name trace_emit_names ->
        add loc "trace-emit"
          (String.concat "." path
          ^ ": only lib/congest may write trace events")
    | "apply_edits" :: "Graph" :: _ ->
        add loc "graph-edit"
          (String.concat "." path
          ^ ": derive faulted graphs through Cluster.Repair")
    | name :: "Unix" :: _ when List.mem name raw_io_names ->
        add loc "raw-io"
          (String.concat "." path
          ^ ": raw file I/O belongs in Dsgraph.Io or the trace sink")
    | "gettimeofday" :: "Unix" :: _
    | "time" :: "Unix" :: _
    | "time" :: "Sys" :: _ ->
        add loc "wallclock"
          (String.concat "." path
          ^ ": read the clock through Congest.Resource.now")
    | _ -> ()
  in
  (* depth of enclosing { init; round; ... } program literals *)
  let in_program = ref 0 in
  let check_print loc path =
    if !in_program > 0 then
      match path with
      | [ name ] when List.mem name print_names ->
          add loc "print-in-program" name
      | ("Printf" | "Format") :: _ ->
          add loc "print-in-program" (String.concat "." path)
      | _ -> ()
  in
  let is_program_record fields =
    let last lid =
      match List.rev (Longident.flatten lid.Location.txt) with
      | x :: _ -> x
      | [] -> ""
    in
    let labels = List.map (fun (lid, _) -> last lid) fields in
    List.mem "init" labels && List.mem "round" labels
  in
  let open Parsetree in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident lid ->
        let path = Longident.flatten lid.Location.txt in
        check_path e.pexp_loc path;
        check_print e.pexp_loc path
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
                add c.pc_lhs.ppat_loc "catchall"
                  "match the exceptions you expect, or add a 'when' guard"
            | _ -> ())
          cases
    | _ -> ());
    match e.pexp_desc with
    | Pexp_record (fields, _) when is_program_record fields ->
        incr in_program;
        super.expr it e;
        decr in_program
    | _ -> super.expr it e
  in
  let module_expr it m =
    (match m.pmod_desc with
    | Pmod_ident lid -> check_path m.pmod_loc (Longident.flatten lid.Location.txt)
    | _ -> ());
    super.module_expr it m
  in
  let iterator = { super with expr; module_expr } in
  iterator.structure iterator structure;
  List.rev !findings

let lint_file ?(config = default_config) file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf file;
      match Parse.implementation lexbuf with
      | structure -> lint_structure ~config ~file structure
      | exception exn ->
          let line, col =
            match Location.error_of_exn exn with
            | Some (`Ok err) ->
                let p = err.Location.main.Location.loc.Location.loc_start in
                (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)
            | _ -> (1, 0)
          in
          [
            {
              file;
              line;
              col;
              rule = "parse-error";
              detail = Printexc.to_string exn;
            };
          ])

let ml_files roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if
            entry <> "_build"
            && entry <> ".git"
            && not (String.length entry > 0 && entry.[0] = '.')
          then walk (Filename.concat path entry))
        (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then acc := path :: !acc
  in
  List.iter (fun r -> if Sys.file_exists r then walk r) roots;
  List.sort compare !acc

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.detail

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* (file, line, col, rule) order, so the report and the JSON payload are
   byte-stable regardless of the filesystem walk order that produced the
   findings *)
let sort_findings findings =
  List.sort
    (fun a b ->
      compare (a.file, a.line, a.col, a.rule, a.detail)
        (b.file, b.line, b.col, b.rule, b.detail))
    findings

let to_json ~files_scanned findings =
  let findings = sort_findings findings in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"rules\":[";
  List.iteri
    (fun i (name, doc) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"doc\":\"%s\"}" (json_escape name)
           (json_escape doc)))
    rules;
  Buffer.add_string buf
    (Printf.sprintf "],\"files_scanned\":%d,\"findings\":[" files_scanned);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"detail\":\"%s\"}"
           (json_escape f.file) f.line f.col (json_escape f.rule)
           (json_escape f.detail)))
    findings;
  Buffer.add_string buf "],\"counts\":{";
  List.iteri
    (fun i (name, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%d" (json_escape name)
           (List.length (List.filter (fun f -> f.rule = name) findings))))
    rules;
  Buffer.add_string buf "}}";
  Buffer.contents buf
